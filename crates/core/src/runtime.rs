//! The persistent sharded runtime: long-lived worker threads behind
//! bounded SPSC command rings.
//!
//! PR 3's scatter-gather front-end ([`crate::sharded`]) paid two system
//! costs the samplers themselves never charge: every `update_batch` spawned
//! and joined `2k` scoped threads, and every query deep-cloned all `k`
//! shards before fold-merging (`O(total state)` on the query path, with
//! ingest stalled behind it). This module removes both:
//!
//! * **Persistent workers.** [`ShardPool::start`] pins each shard to one
//!   long-lived OS thread fed by a bounded SPSC ring
//!   ([`tps_streams::spsc`]) of coarse commands ([`ShardCmd`]): ingest
//!   chunks, epoch barriers, snapshot requests. Steady-state ingest pays a
//!   ring push per ~64k-item chunk instead of a spawn/join per batch.
//! * **Snapshot-isolated queries.** A snapshot barrier makes every worker
//!   emit its shard's PR-4 codec snapshot *in-band* — after everything
//!   enqueued before the barrier, before anything after it — so the `k`
//!   byte records form a consistent cut of the stream. The coordinator
//!   restores and fold-merges them off the ingest path; by the pinned
//!   restore-then-merge ≡ in-process-merge law the answer is byte-identical
//!   to merging live clones, but ingest only stalls for the (cheap,
//!   per-shard) serialisation, never for the merge.
//! * **Backpressure policy.** When a ring is full the pool either blocks
//!   the caller ([`Backpressure::Block`]), spills the chunk to a
//!   coordinator-side queue retried later ([`Backpressure::Spill`]) — which
//!   keeps ingest calls non-blocking even while workers are busy
//!   snapshotting — or sheds it outright ([`Backpressure::Fail`]), keeping
//!   both latency and memory bounded at the cost of sampling only the
//!   admitted sub-stream. Every policy's pressure events are counted in
//!   [`RuntimeStats`] so front-ends can observe instead of flying blind.
//!
//! ## Ownership and safety model
//!
//! The coordinator (e.g. [`crate::sharded::ShardedSampler`]) keeps owning
//! its shard states; the pool borrows them as raw pointers for the workers.
//! Exclusivity is protocol-enforced rather than type-enforced, which is why
//! [`ShardPool::start`] is `unsafe`:
//!
//! * between `start` and the pool's drop, worker `j` is the only code that
//!   dereferences shard `j`'s pointer — **except** when the coordinator has
//!   completed a barrier ([`ShardPool::flush`] / [`ShardPool::snapshot_all`])
//!   and has not yet sent another command; in that window every ring is
//!   empty and every worker is parked on its ring, so the coordinator may
//!   read (or, with `&mut` access, mutate) the shards directly;
//! * dropping the pool closes every ring, lets each worker drain what is
//!   already queued, and joins it — after which the shards are plain owned
//!   data again. A worker panic is re-raised on the coordinator thread at
//!   the next barrier (or at drop), never swallowed.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use tps_streams::codec::Snapshot;
use tps_streams::spsc::{self, Backpressure, Consumer, Producer, PushError};
use tps_streams::{Item, StreamUpdate, UpdateSampler};

/// Tuning knobs for [`ShardPool::start`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// What to do when a shard's command ring is full.
    pub backpressure: Backpressure,
    /// Commands buffered per shard ring (rounded up to a power of two).
    pub ring_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            backpressure: Backpressure::Block,
            // 8 in-flight chunks per shard: enough to ride out scheduling
            // hiccups, small enough that Block-mode memory stays bounded.
            ring_capacity: 8,
        }
    }
}

/// Pressure and throughput counters for a [`ShardPool`] (cumulative over
/// the pool's lifetime, summed across shards). Cheap to read — plain
/// coordinator-side integers, no atomics, no barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Chunks accepted for delivery (pushed to a ring or parked for
    /// guaranteed later delivery). Excludes shed chunks.
    pub chunks: u64,
    /// Times an ingest call found a ring full and had to park
    /// ([`Backpressure::Block`] only).
    pub blocked: u64,
    /// Chunks that overflowed into the coordinator-side spill queue
    /// ([`Backpressure::Spill`] only; cumulative, not currently parked).
    pub spilled: u64,
    /// Chunks currently parked in spill queues awaiting retry.
    pub spilled_pending: usize,
    /// Chunks shed because their ring was full ([`Backpressure::Fail`]).
    pub dropped_chunks: u64,
    /// Items lost inside those shed chunks.
    pub dropped_items: u64,
    /// Snapshot barriers completed ([`ShardPool::snapshot_all`]) — each
    /// one is a consistent-cut query the pool served by serialising every
    /// shard in-band.
    pub snapshots: u64,
}

/// One command on a shard's ingest ring. Coarse by design: the ring is
/// crossed once per chunk, not once per update.
enum ShardCmd<U> {
    /// Feed a chunk of routed updates through the shard's batched ingest
    /// path. The buffer is recycled back to the coordinator once drained.
    Ingest(Vec<U>),
    /// Epoch barrier: acknowledge once everything enqueued earlier has been
    /// applied. With `snapshot` set, also emit the shard's sealed snapshot
    /// bytes at that point — the consistent-cut query mechanism.
    Barrier { epoch: u64, snapshot: bool },
}

/// Worker → coordinator responses (one shared `std::sync::mpsc` hub).
enum ShardReply<U> {
    /// A drained ingest buffer, cleared, for the coordinator to reuse.
    Recycled(Vec<U>),
    /// Barrier acknowledgement (with snapshot bytes if requested).
    Barrier {
        shard: usize,
        epoch: u64,
        snapshot: Option<Vec<u8>>,
    },
}

/// Sends a shard pointer into its worker thread. Safety is argued at the
/// single place these are created, [`ShardPool::start`].
struct ShardPtr<S>(*mut S);
unsafe impl<S: Send> Send for ShardPtr<S> {}

/// A pool of persistent shard workers (see the module docs).
///
/// Not generic over the sampler type: the type is erased into the worker
/// closures at [`ShardPool::start`], so coordinators can hold a `ShardPool`
/// without threading `S` through their own fields. It *is* generic over the
/// update type `U` moving through the rings — the sampler-family seam: the
/// same pool hosts insertion-only shards (`U = Item`, the default) and
/// turnstile shards (`U = SignedUpdate`) with identical transport,
/// backpressure and barrier machinery.
///
/// [`SignedUpdate`]: tps_streams::SignedUpdate
pub struct ShardPool<U: StreamUpdate = Item> {
    producers: Vec<Producer<ShardCmd<U>>>,
    handles: Vec<Option<JoinHandle<()>>>,
    replies: mpsc::Receiver<ShardReply<U>>,
    /// Per-shard overflow queues ([`Backpressure::Spill`] only): chunks
    /// that found their ring full, in stream order, retried before any new
    /// chunk and drained (blocking) before any barrier.
    spill: Vec<VecDeque<Vec<U>>>,
    /// Cleared ingest buffers handed back by workers, reused by
    /// [`ShardPool::take_buffer`] so steady-state ingest allocates nothing.
    free: Vec<Vec<U>>,
    backpressure: Backpressure,
    epoch: u64,
    stats: RuntimeStats,
}

/// How long a barrier wait sleeps between liveness checks of the workers.
const BARRIER_POLL: Duration = Duration::from_millis(100);

impl<U: StreamUpdate> ShardPool<U> {
    /// Spawns one persistent worker per pointer in `shards` and wires each
    /// to a bounded command ring.
    ///
    /// # Safety
    ///
    /// Every pointer must stay valid and un-aliased for the pool's whole
    /// lifetime: until this `ShardPool` is dropped, the pointee may only be
    /// accessed (a) by its worker thread, and (b) by the caller *between* a
    /// completed barrier ([`Self::flush`] / [`Self::snapshot_all`]) and the
    /// next command sent to that shard. In particular the allocation the
    /// pointers point into must not move or be freed while the pool is
    /// alive (the pool joins its workers on drop, so dropping the pool
    /// before the pointees is sufficient).
    pub unsafe fn start<S>(shards: &[*mut S], config: RuntimeConfig) -> Self
    where
        S: UpdateSampler<U> + Snapshot + Send + 'static,
    {
        assert!(!shards.is_empty(), "need at least one shard");
        let (reply_tx, replies) = mpsc::channel::<ShardReply<U>>();
        let mut producers = Vec::with_capacity(shards.len());
        let mut handles = Vec::with_capacity(shards.len());
        for (index, &shard) in shards.iter().enumerate() {
            let (tx, rx) = spsc::ring::<ShardCmd<U>>(config.ring_capacity);
            let reply_tx = reply_tx.clone();
            let ptr = ShardPtr(shard);
            let handle = std::thread::Builder::new()
                .name(format!("tps-shard-{index}"))
                .spawn(move || worker_loop(ptr, rx, index, reply_tx))
                .expect("spawn shard worker");
            producers.push(tx);
            handles.push(Some(handle));
        }
        Self {
            spill: vec![VecDeque::new(); producers.len()],
            free: Vec::new(),
            producers,
            handles,
            replies,
            backpressure: config.backpressure,
            epoch: 0,
            stats: RuntimeStats::default(),
        }
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.producers.len()
    }

    /// The configured backpressure policy.
    pub fn backpressure(&self) -> Backpressure {
        self.backpressure
    }

    /// Chunks currently parked in coordinator-side spill queues
    /// ([`Backpressure::Spill`] only).
    pub fn spilled_chunks(&self) -> usize {
        self.spill.iter().map(VecDeque::len).sum()
    }

    /// Cumulative pressure/throughput counters (see [`RuntimeStats`]).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            spilled_pending: self.spilled_chunks(),
            ..self.stats
        }
    }

    /// A cleared, capacity-bearing ingest buffer — recycled from a worker
    /// when one is available, freshly allocated otherwise.
    pub fn take_buffer(&mut self) -> Vec<U> {
        if self.free.is_empty() {
            self.harvest_replies();
        }
        self.free.pop().unwrap_or_default()
    }

    /// Enqueues one routed chunk for `shard`, applying the backpressure
    /// policy. Order per shard is preserved even under spill: a new chunk
    /// never overtakes a previously spilled one.
    pub fn send(&mut self, shard: usize, chunk: Vec<U>) {
        if chunk.is_empty() {
            self.free.push(chunk);
            return;
        }
        match self.backpressure {
            Backpressure::Block => {
                // Fast path first so the parking events are observable.
                match self.producers[shard].try_push(ShardCmd::Ingest(chunk)) {
                    Ok(()) => self.stats.chunks += 1,
                    Err(PushError::Full(cmd)) => {
                        self.stats.blocked += 1;
                        if self.producers[shard].push(cmd).is_err() {
                            self.worker_died(shard);
                        }
                        self.stats.chunks += 1;
                    }
                    Err(PushError::Disconnected(_)) => self.worker_died(shard),
                }
            }
            Backpressure::Spill => {
                self.retry_spill(shard);
                self.stats.chunks += 1;
                if self.spill[shard].is_empty() {
                    match self.producers[shard].try_push(ShardCmd::Ingest(chunk)) {
                        Ok(()) => {}
                        Err(PushError::Full(cmd)) => {
                            let ShardCmd::Ingest(chunk) = cmd else {
                                unreachable!("spill path only pushes ingest commands")
                            };
                            self.stats.spilled += 1;
                            self.spill[shard].push_back(chunk);
                        }
                        Err(PushError::Disconnected(_)) => self.worker_died(shard),
                    }
                } else {
                    self.stats.spilled += 1;
                    self.spill[shard].push_back(chunk);
                }
            }
            Backpressure::Fail => {
                match self.producers[shard].try_push(ShardCmd::Ingest(chunk)) {
                    Ok(()) => self.stats.chunks += 1,
                    Err(PushError::Full(cmd)) => {
                        let ShardCmd::Ingest(mut chunk) = cmd else {
                            unreachable!("fail path only pushes ingest commands")
                        };
                        // Shed the chunk: count the loss, recycle the buffer.
                        self.stats.dropped_chunks += 1;
                        self.stats.dropped_items += chunk.len() as u64;
                        chunk.clear();
                        self.recycle(chunk);
                    }
                    Err(PushError::Disconnected(_)) => self.worker_died(shard),
                }
            }
        }
    }

    /// Non-blocking retry of `shard`'s spilled chunks, oldest first.
    fn retry_spill(&mut self, shard: usize) {
        while let Some(chunk) = self.spill[shard].pop_front() {
            match self.producers[shard].try_push(ShardCmd::Ingest(chunk)) {
                Ok(()) => {}
                Err(PushError::Full(cmd)) => {
                    let ShardCmd::Ingest(chunk) = cmd else {
                        unreachable!("spill path only pushes ingest commands")
                    };
                    self.spill[shard].push_front(chunk);
                    return;
                }
                Err(PushError::Disconnected(_)) => self.worker_died(shard),
            }
        }
    }

    /// Blocks until everything sent so far — including spilled chunks — has
    /// been applied by every worker. On return all rings are empty and the
    /// coordinator may touch the shard states directly (see
    /// [`Self::start`]'s contract).
    pub fn flush(&mut self) {
        let _ = self.barrier(false);
    }

    /// Consistent-cut query: blocks until every worker has applied its
    /// pending ingest and emitted its shard's snapshot at that point.
    /// Returns the `k` sealed snapshot byte records in shard order.
    pub fn snapshot_all(&mut self) -> Vec<Vec<u8>> {
        self.barrier(true)
            .into_iter()
            .map(|bytes| bytes.expect("snapshot barrier returns bytes for every shard"))
            .collect()
    }

    fn barrier(&mut self, snapshot: bool) -> Vec<Option<Vec<u8>>> {
        self.epoch += 1;
        if snapshot {
            self.stats.snapshots += 1;
        }
        let epoch = self.epoch;
        for shard in 0..self.producers.len() {
            // A barrier must sit after every chunk of the cut, so spilled
            // chunks are flushed with *blocking* pushes first.
            while let Some(chunk) = self.spill[shard].pop_front() {
                if self.producers[shard].push(ShardCmd::Ingest(chunk)).is_err() {
                    self.worker_died(shard);
                }
            }
            if self.producers[shard]
                .push(ShardCmd::Barrier { epoch, snapshot })
                .is_err()
            {
                self.worker_died(shard);
            }
        }
        let k = self.producers.len();
        let mut pending = k;
        let mut acked = vec![false; k];
        let mut out: Vec<Option<Vec<u8>>> = (0..k).map(|_| None).collect();
        while pending > 0 {
            match self.replies.recv_timeout(BARRIER_POLL) {
                Ok(ShardReply::Recycled(buffer)) => self.recycle(buffer),
                Ok(ShardReply::Barrier {
                    shard,
                    epoch: acked_epoch,
                    snapshot,
                }) => {
                    // Barriers are issued and awaited serially, so every
                    // ack we can see belongs to the current epoch.
                    debug_assert_eq!(acked_epoch, epoch, "barrier epochs must serialise");
                    debug_assert!(!acked[shard], "one ack per shard per barrier");
                    acked[shard] = true;
                    out[shard] = snapshot;
                    pending -= 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(dead) = (0..k).find(|&shard| {
                        !acked[shard]
                            && self.handles[shard]
                                .as_ref()
                                .is_some_and(JoinHandle::is_finished)
                    }) {
                        self.worker_died(dead);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Every worker holds a reply sender for its lifetime;
                    // all of them gone mid-barrier means they all died.
                    self.worker_died(0);
                }
            }
        }
        out
    }

    /// Drains any already-delivered replies without blocking (harvesting
    /// recycled buffers on the ingest path).
    fn harvest_replies(&mut self) {
        while let Ok(reply) = self.replies.try_recv() {
            match reply {
                ShardReply::Recycled(buffer) => self.recycle(buffer),
                ShardReply::Barrier { .. } => {
                    unreachable!("barrier acks are consumed by the issuing barrier")
                }
            }
        }
    }

    fn recycle(&mut self, buffer: Vec<U>) {
        // Bound the free list: beyond a few buffers per shard the extras
        // are dead capacity.
        if self.free.len() < 4 * self.producers.len() {
            self.free.push(buffer);
        }
    }

    /// A worker's ring disconnected or its thread finished early: the only
    /// cause is a panic in the shard's own update path. Join it and re-raise
    /// the payload on the coordinator thread.
    fn worker_died(&mut self, shard: usize) -> ! {
        if let Some(handle) = self.handles[shard].take() {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        panic!("shard worker {shard} exited before its pool shut down");
    }
}

impl<U: StreamUpdate> Drop for ShardPool<U> {
    fn drop(&mut self) {
        // Closing the rings (dropping the producers) is the shutdown
        // signal: each worker drains what is already queued, then exits —
        // drop is a graceful drain, not an abort.
        self.producers.clear();
        let mut worker_panic = None;
        for handle in self.handles.iter_mut().filter_map(Option::take) {
            if let Err(payload) = handle.join() {
                worker_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = worker_panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl<U: StreamUpdate> std::fmt::Debug for ShardPool<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("num_shards", &self.num_shards())
            .field("backpressure", &self.backpressure)
            .field("epoch", &self.epoch)
            .field("spilled_chunks", &self.spilled_chunks())
            .finish()
    }
}

/// The worker body: apply commands from the ring in order until the
/// coordinator closes it, acknowledging barriers and recycling buffers.
fn worker_loop<S, U>(
    ptr: ShardPtr<S>,
    mut commands: Consumer<ShardCmd<U>>,
    shard: usize,
    replies: mpsc::Sender<ShardReply<U>>,
) where
    S: UpdateSampler<U> + Snapshot + Send,
    U: StreamUpdate,
{
    while let Some(cmd) = commands.pop() {
        match cmd {
            ShardCmd::Ingest(mut chunk) => {
                // SAFETY: per `ShardPool::start`'s contract this worker has
                // exclusive access to the pointee while commands are in
                // flight.
                unsafe { (*ptr.0).ingest_batch(&chunk) };
                chunk.clear();
                let _ = replies.send(ShardReply::Recycled(chunk));
            }
            ShardCmd::Barrier { epoch, snapshot } => {
                // SAFETY: as above; `snapshot` only needs `&S`.
                let bytes = snapshot.then(|| unsafe { (*ptr.0).snapshot() });
                let _ = replies.send(ShardReply::Barrier {
                    shard,
                    epoch,
                    snapshot: bytes,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::TrulyPerfectLpSampler;
    use tps_streams::codec::Restore;
    use tps_streams::StreamSampler;

    fn samplers(k: usize, seed: u64) -> Vec<TrulyPerfectLpSampler> {
        (0..k as u64)
            .map(|j| TrulyPerfectLpSampler::new(2.0, 256, 0.1, seed ^ (j << 32)))
            .collect()
    }

    fn stream(len: usize) -> Vec<Item> {
        (0..len as u64)
            .map(|i| i.wrapping_mul(0x9E37) % 97)
            .collect()
    }

    /// Round-robin chunks through the pool ≡ the same chunks applied
    /// directly: the pool adds routing-free transport, nothing else.
    #[test]
    fn pool_ingest_matches_direct_ingest() {
        for backpressure in [Backpressure::Block, Backpressure::Spill] {
            let mut via_pool = samplers(3, 9);
            let mut direct = samplers(3, 9);
            let items = stream(30_000);
            {
                let ptrs: Vec<*mut _> = via_pool.iter_mut().map(|s| s as *mut _).collect();
                let mut pool = unsafe {
                    ShardPool::start(
                        &ptrs,
                        RuntimeConfig {
                            backpressure,
                            // Tiny ring so both policies hit their full-ring path.
                            ring_capacity: 2,
                        },
                    )
                };
                for (index, chunk) in items.chunks(1_000).enumerate() {
                    let shard = index % 3;
                    let mut buffer = pool.take_buffer();
                    buffer.extend_from_slice(chunk);
                    pool.send(shard, buffer);
                    direct[shard].update_batch(chunk);
                }
                pool.flush();
                assert_eq!(pool.spilled_chunks(), 0);
            }
            for (a, b) in via_pool.iter().zip(&direct) {
                assert_eq!(a.snapshot(), b.snapshot(), "{backpressure:?}");
            }
        }
    }

    /// The snapshot barrier is a consistent cut: bytes equal each shard's
    /// own snapshot at exactly the pre-barrier prefix, and ingest enqueued
    /// after the barrier is excluded.
    #[test]
    fn snapshot_barrier_cuts_between_chunks() {
        let mut shards = samplers(2, 4);
        let mut reference = samplers(2, 4);
        let prefix = stream(8_000);
        let suffix: Vec<Item> = stream(8_000).into_iter().map(|x| x + 1).collect();
        let cut_bytes;
        {
            let ptrs: Vec<*mut _> = shards.iter_mut().map(|s| s as *mut _).collect();
            let mut pool = unsafe { ShardPool::start(&ptrs, RuntimeConfig::default()) };
            for (j, half) in prefix.chunks(prefix.len() / 2).enumerate() {
                pool.send(j, half.to_vec());
            }
            cut_bytes = pool.snapshot_all();
            for (j, half) in suffix.chunks(suffix.len() / 2).enumerate() {
                pool.send(j, half.to_vec());
            }
            pool.flush();
        }
        for (j, half) in prefix.chunks(prefix.len() / 2).enumerate() {
            reference[j].update_batch(half);
        }
        for (j, bytes) in cut_bytes.iter().enumerate() {
            assert_eq!(bytes, &reference[j].snapshot(), "shard {j} cut drifted");
            let restored = TrulyPerfectLpSampler::restore(bytes).unwrap();
            assert_eq!(restored.processed(), reference[j].processed());
        }
        // And the post-barrier suffix did land (drop = graceful drain).
        for (j, half) in suffix.chunks(suffix.len() / 2).enumerate() {
            reference[j].update_batch(half);
            assert_eq!(shards[j].snapshot(), reference[j].snapshot());
        }
    }

    /// Spill mode never blocks the sender: with a 2-slot ring and a worker
    /// wedged behind a large chunk, sends keep succeeding by spilling, and
    /// the barrier drains everything in order.
    #[test]
    fn spill_mode_parks_overflow_and_flush_drains_it() {
        let mut shards = samplers(1, 11);
        let mut direct = samplers(1, 11);
        let items = stream(50_000);
        {
            let ptrs: Vec<*mut _> = shards.iter_mut().map(|s| s as *mut _).collect();
            let mut pool = unsafe {
                ShardPool::start(
                    &ptrs,
                    RuntimeConfig {
                        backpressure: Backpressure::Spill,
                        ring_capacity: 2,
                    },
                )
            };
            let mut spilled_at_least_once = false;
            for chunk in items.chunks(500) {
                pool.send(0, chunk.to_vec());
                direct[0].update_batch(chunk);
                spilled_at_least_once |= pool.spilled_chunks() > 0;
            }
            pool.flush();
            assert_eq!(pool.spilled_chunks(), 0);
            // 100 rapid sends through a 2-slot ring must overflow sometimes;
            // if not, the test isn't exercising the spill path.
            assert!(spilled_at_least_once, "spill path never exercised");
        }
        assert_eq!(shards[0].snapshot(), direct[0].snapshot());
    }

    /// Fail mode sheds chunks instead of blocking or buffering: against a
    /// deliberately slow worker behind a 2-slot ring, rapid sends drop some
    /// chunks, the counters account for every chunk and item, and the
    /// barrier still completes (barriers are never shed).
    #[test]
    fn fail_mode_sheds_chunks_and_counts_them() {
        struct SlowCounter {
            seen: u64,
        }
        impl StreamSampler for SlowCounter {
            fn update(&mut self, _item: Item) {
                self.seen += 1;
            }
            fn update_batch(&mut self, items: &[Item]) {
                std::thread::sleep(Duration::from_millis(20));
                self.seen += items.len() as u64;
            }
            fn sample(&mut self) -> tps_streams::SampleOutcome {
                tps_streams::SampleOutcome::Empty
            }
        }
        impl Snapshot for SlowCounter {
            const TAG: u16 = 0xFFFE;
            fn encode_into(&self, w: &mut tps_streams::SnapshotWriter) {
                w.put_tag(Self::TAG);
                w.put_u64(self.seen);
            }
        }
        let mut shards = [SlowCounter { seen: 0 }];
        let stats = {
            let ptrs: Vec<*mut _> = shards.iter_mut().map(|s| s as *mut _).collect();
            let mut pool = unsafe {
                ShardPool::start(
                    &ptrs,
                    RuntimeConfig {
                        backpressure: Backpressure::Fail,
                        ring_capacity: 2,
                    },
                )
            };
            for _ in 0..24 {
                pool.send(0, vec![1, 2, 3]);
            }
            pool.flush();
            pool.stats()
        };
        assert!(stats.dropped_chunks > 0, "fail path never shed a chunk");
        assert_eq!(stats.chunks + stats.dropped_chunks, 24);
        assert_eq!(stats.dropped_items, 3 * stats.dropped_chunks);
        assert_eq!(stats.spilled, 0);
        assert_eq!(stats.spilled_pending, 0);
        // Delivered chunks all landed; shed chunks never did.
        assert_eq!(shards[0].seen, 3 * stats.chunks);
    }

    #[test]
    fn worker_panic_surfaces_at_the_barrier() {
        struct Bomb;
        impl StreamSampler for Bomb {
            fn update(&mut self, _item: Item) {
                panic!("boom");
            }
            fn sample(&mut self) -> tps_streams::SampleOutcome {
                tps_streams::SampleOutcome::Empty
            }
        }
        impl Snapshot for Bomb {
            const TAG: u16 = 0xFFFF;
            fn encode_into(&self, w: &mut tps_streams::SnapshotWriter) {
                w.put_tag(Self::TAG);
            }
        }
        let result = std::panic::catch_unwind(|| {
            let mut shards = [Bomb];
            let ptrs: Vec<*mut _> = shards.iter_mut().map(|s| s as *mut _).collect();
            let mut pool = unsafe { ShardPool::start(&ptrs, RuntimeConfig::default()) };
            pool.send(0, vec![1, 2, 3]);
            pool.flush();
        });
        let payload = result.expect_err("worker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(message, "boom");
    }
}
