//! Misra–Gries heavy hitters (Theorem 3.2 of the paper).
//!
//! The Misra–Gries summary with `k` counters processed over an
//! insertion-only stream of length `m` maintains, for every item `i`, an
//! estimate `f̂_i` with
//!
//! ```text
//! f_i − m/k  ≤  f̂_i  ≤  f_i
//! ```
//!
//! deterministically. The paper (Theorem 3.4) uses this to obtain a *certain*
//! bound `Z` with `‖f‖_∞ ≤ Z ≤ ‖f‖_∞ + m/k`, which normalises the
//! rejection-sampling step of the truly perfect `L_p` sampler for
//! `p ∈ [1, 2]` without introducing any failure probability.

use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::hashmap_bytes;
use tps_streams::{FastHashMap, Item, MergeableSummary, SpaceUsage};

/// The Misra–Gries heavy-hitter summary.
#[derive(Debug, Clone)]
pub struct MisraGries {
    capacity: usize,
    counters: FastHashMap<Item, u64>,
    processed: u64,
    /// Total amount decremented from every counter so far; the classic
    /// analysis shows `decrements ≤ m / (capacity + 1)`.
    decrements: u64,
}

impl MisraGries {
    /// Creates a summary with `capacity` counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Misra-Gries needs at least one counter");
        Self {
            capacity,
            counters: FastHashMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            processed: 0,
            decrements: 0,
        }
    }

    /// Number of counters.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stream updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Processes one unit insertion.
    pub fn update(&mut self, item: Item) {
        self.processed += 1;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, 1);
            return;
        }
        // Decrement every counter; drop the ones that reach zero. This is the
        // "cancel one occurrence of each of capacity+1 distinct items" step.
        self.decrements += 1;
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Processes a contiguous batch of unit insertions, leaving the summary
    /// in exactly the state the per-item [`MisraGries::update`] loop would.
    ///
    /// Runs of equal adjacent items are replayed in closed form: a tracked
    /// (or insertable) item absorbs its whole run with one hash-table touch,
    /// and a run that hits a full table performs `min(run, min-counter)`
    /// decrement rounds as a single subtraction instead of `run` separate
    /// `retain` sweeps.
    pub fn update_batch(&mut self, items: &[Item]) {
        tps_streams::for_each_run(items, |item, count| self.update_run(item, count));
    }

    /// Processes `count` consecutive occurrences of `item` in closed form,
    /// leaving exactly the state `count` sequential [`MisraGries::update`]
    /// calls would. (Order matters across *different* items — aggregating a
    /// whole stream per item is **not** equivalent — but a contiguous run of
    /// one item replays exactly: a tracked or insertable item absorbs the
    /// run with one hash-table touch, and a run hitting a full table funds
    /// `d = min(count, smallest counter)` decrement rounds as a single
    /// subtraction.)
    #[inline]
    pub fn update_run(&mut self, item: Item, count: u64) {
        let mut run = count;
        self.processed += run;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += run;
        } else if self.counters.len() < self.capacity {
            self.counters.insert(item, run);
        } else {
            // Sequentially, each copy decrements every counter until one
            // reaches zero and frees a slot; the copy *causing* the final
            // decrement is itself consumed.
            let min = self.counters.values().copied().min().unwrap_or(0);
            let d = run.min(min);
            self.decrements += d;
            self.counters.retain(|_, c| {
                *c -= d;
                *c > 0
            });
            run -= d;
            if run > 0 {
                // A slot is now free (some counter hit zero above).
                self.counters.insert(item, run);
            }
        }
    }

    /// The deterministic *lower* estimate `f̂_i ≤ f_i` for an item
    /// (zero if the item is not tracked).
    pub fn estimate(&self, item: Item) -> u64 {
        self.counters.get(&item).copied().unwrap_or(0)
    }

    /// The deterministic error bound `m / (capacity + 1)` such that
    /// `f_i − error ≤ f̂_i ≤ f_i` for every item.
    pub fn error_bound(&self) -> u64 {
        self.processed / (self.capacity as u64 + 1)
    }

    /// A certain upper bound `Z` on `‖f‖_∞` with
    /// `‖f‖_∞ ≤ Z ≤ ‖f‖_∞ + m/(capacity+1)`.
    ///
    /// This is the quantity the truly perfect `L_p` sampler for `p ∈ [1, 2]`
    /// uses as its rejection normaliser (Theorem 3.4).
    pub fn max_frequency_upper_bound(&self) -> u64 {
        let best_estimate = self.counters.values().copied().max().unwrap_or(0);
        best_estimate + self.error_bound()
    }

    /// The tracked items and their (lower) estimates, sorted by decreasing
    /// estimate.
    pub fn heavy_hitters(&self) -> Vec<(Item, u64)> {
        let mut v: Vec<(Item, u64)> = self.counters.iter().map(|(&i, &c)| (i, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// All items whose true frequency could exceed `threshold` (no false
    /// negatives, by the deterministic error bound).
    pub fn candidates_above(&self, threshold: u64) -> Vec<Item> {
        let err = self.error_bound();
        self.counters
            .iter()
            .filter(|&(_, &c)| c + err >= threshold)
            .map(|(&i, _)| i)
            .collect()
    }
}

/// The Agarwal et al. *mergeable summaries* merge: counters are summed,
/// and if more than `capacity` survive, the `(capacity + 1)`-th largest
/// counter value is subtracted from every counter (each such subtraction
/// cancels one occurrence of `capacity + 1` distinct items, exactly like a
/// sequential decrement round). The merged summary keeps the full
/// deterministic guarantee over the concatenated stream:
/// `f_i − m/(capacity+1) ≤ f̂_i ≤ f_i` with `m` the combined length.
///
/// When the two summaries never decremented and their tracked sets fit in
/// `capacity` counters together (e.g. item-disjoint shards with enough
/// counters), the merged state is byte-identical to sequential ingestion of
/// the concatenated stream.
///
/// # Panics
///
/// Panics if the capacities differ.
impl MergeableSummary for MisraGries {
    fn merge(mut self, other: Self) -> Self {
        assert_eq!(
            self.capacity, other.capacity,
            "merging Misra-Gries summaries requires equal capacities"
        );
        self.processed += other.processed;
        self.decrements += other.decrements;
        for (item, count) in other.counters {
            *self.counters.entry(item).or_insert(0) += count;
        }
        if self.counters.len() > self.capacity {
            let mut values: Vec<u64> = self.counters.values().copied().collect();
            values.sort_unstable_by(|a, b| b.cmp(a));
            let cut = values[self.capacity];
            self.decrements += cut;
            self.counters.retain(|_, c| {
                *c = c.saturating_sub(cut);
                *c > 0
            });
        }
        self
    }
}

impl SpaceUsage for MisraGries {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + hashmap_bytes(&self.counters)
    }
}

/// Wire format: capacity, processed, decrements, then the live counters
/// sorted by item.
impl Snapshot for MisraGries {
    const TAG: u16 = codec::tag::MISRA_GRIES;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_usize(self.capacity);
        w.put_u64(self.processed);
        w.put_u64(self.decrements);
        codec::put_sorted_u64_pairs(w, self.counters.iter().map(|(&i, &c)| (i, c)));
    }
}

impl Restore for MisraGries {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(CodecError::InvalidValue {
                what: "Misra-Gries capacity must be positive",
            });
        }
        let processed = r.get_u64()?;
        let decrements = r.get_u64()?;
        let pairs = codec::get_sorted_u64_pairs(r)?;
        if pairs.len() > capacity {
            return Err(CodecError::InvalidValue {
                what: "Misra-Gries holds more counters than its capacity",
            });
        }
        if pairs.iter().any(|&(_, c)| c == 0) {
            return Err(CodecError::InvalidValue {
                what: "Misra-Gries counters must be positive",
            });
        }
        // Pre-size from the validated pair count, not the untrusted
        // `capacity` field (which is legal state but must not drive an
        // allocation); the map grows amortised if the summary later fills.
        let mut counters =
            FastHashMap::with_capacity_and_hasher(pairs.len() + 1, Default::default());
        counters.extend(pairs);
        Ok(Self {
            capacity,
            counters,
            processed,
            decrements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::FrequencyVector;

    fn check_invariant(stream: &[Item], capacity: usize) {
        let mut mg = MisraGries::new(capacity);
        for &x in stream {
            mg.update(x);
        }
        let truth = FrequencyVector::from_stream(stream);
        let err = mg.error_bound();
        for (item, freq) in truth.iter() {
            let est = mg.estimate(item);
            assert!(est <= freq as u64, "estimate overshoots");
            assert!(
                est + err >= freq as u64,
                "estimate undershoots beyond the bound"
            );
        }
        // The Z bound sandwiches the true maximum frequency.
        let z = mg.max_frequency_upper_bound();
        assert!(z >= truth.l_inf());
        assert!(z <= truth.l_inf() + err);
    }

    #[test]
    fn invariants_on_skewed_stream() {
        let mut stream = Vec::new();
        for i in 0..200u64 {
            for _ in 0..(200 - i) {
                stream.push(i);
            }
        }
        check_invariant(&stream, 10);
        check_invariant(&stream, 50);
    }

    #[test]
    fn invariants_on_uniform_stream() {
        let stream: Vec<Item> = (0..5_000u64).map(|i| i % 500).collect();
        check_invariant(&stream, 25);
    }

    #[test]
    fn heavy_item_is_always_tracked() {
        // An item with frequency > m/(k+1) must survive.
        let mut stream = Vec::new();
        for i in 0..1000u64 {
            stream.push(i % 100 + 1000); // noise
            stream.push(77); // heavy
        }
        let mut mg = MisraGries::new(10);
        for &x in &stream {
            mg.update(x);
        }
        assert!(mg.estimate(77) > 0, "majority-style item must be retained");
        assert!(mg.heavy_hitters().iter().any(|&(i, _)| i == 77));
    }

    #[test]
    fn candidates_above_has_no_false_negatives() {
        let stream: Vec<Item> = (0..2_000u64)
            .map(|i| if i % 3 == 0 { 5 } else { i })
            .collect();
        let mut mg = MisraGries::new(20);
        for &x in &stream {
            mg.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        let threshold = 300u64;
        let cands = mg.candidates_above(threshold);
        for (item, freq) in truth.iter() {
            if freq as u64 >= threshold {
                assert!(cands.contains(&item), "missed heavy item {item}");
            }
        }
    }

    #[test]
    fn empty_summary_bounds() {
        let mg = MisraGries::new(4);
        assert_eq!(mg.estimate(1), 0);
        assert_eq!(mg.error_bound(), 0);
        assert_eq!(mg.max_frequency_upper_bound(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_capacity_panics() {
        let _ = MisraGries::new(0);
    }

    #[test]
    fn space_grows_with_capacity_not_stream() {
        let mut small = MisraGries::new(8);
        let mut large = MisraGries::new(1024);
        for i in 0..100_000u64 {
            small.update(i % 7777);
            large.update(i % 7777);
        }
        assert!(small.space_bytes() < large.space_bytes());
        assert!(
            small.space_bytes() < 10_000,
            "MG space must not grow with the stream"
        );
    }
}
