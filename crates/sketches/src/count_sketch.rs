//! CountSketch (Charikar–Chen–Farach-Colton).
//!
//! An unbiased randomized frequency summary with error proportional to
//! `‖f‖_2 / √cols` per row and a median taken across rows. Used by the
//! baseline perfect-`L_p`-sampler reproduction to recover the maximising
//! coordinate of the exponentially-scaled vector (the role CountSketch /
//! CountMin play in [JW18b]).

use tps_random::{KWiseHash, StreamRng};
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::vec_bytes;
use tps_streams::{Item, MergeableSummary, SpaceUsage};

/// A CountSketch over signed updates.
#[derive(Debug, Clone)]
pub struct CountSketch {
    rows: usize,
    cols: usize,
    table: Vec<i64>,
    bucket_hashes: Vec<KWiseHash>,
    sign_hashes: Vec<KWiseHash>,
}

impl CountSketch {
    /// Creates a sketch with the given number of rows and columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: StreamRng>(rng: &mut R, rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "CountSketch dimensions must be positive"
        );
        let bucket_hashes = (0..rows).map(|_| KWiseHash::new(rng, 2)).collect();
        let sign_hashes = (0..rows).map(|_| KWiseHash::new(rng, 4)).collect();
        Self {
            rows,
            cols,
            table: vec![0; rows * cols],
            bucket_hashes,
            sign_hashes,
        }
    }

    /// Processes a signed update `(item, delta)`.
    pub fn update(&mut self, item: Item, delta: i64) {
        for r in 0..self.rows {
            let c = self.bucket_hashes[r].bucket(item, self.cols);
            let s = self.sign_hashes[r].sign(item);
            self.table[r * self.cols + c] += s * delta;
        }
    }

    /// Processes a unit insertion.
    pub fn insert(&mut self, item: Item) {
        self.update(item, 1);
    }

    /// Processes a contiguous batch of unit insertions, vectorised per
    /// distinct item (the signed-counter analogue of
    /// [`CountMin::update_batch`](crate::CountMin::update_batch)): the
    /// batch is aggregated into `(item, multiplicity)` pairs and each row's
    /// hashes are evaluated once per distinct item. Counters are additive,
    /// so the final state is exactly the per-item loop's.
    pub fn insert_batch(&mut self, items: &[Item]) {
        for (item, count) in tps_streams::count_multiplicities(items) {
            self.update(item, count as i64);
        }
    }

    /// The median-of-rows point estimate of `f_i` (unbiased per row).
    pub fn estimate(&self, item: Item) -> i64 {
        let mut row_estimates: Vec<i64> = (0..self.rows)
            .map(|r| {
                let c = self.bucket_hashes[r].bucket(item, self.cols);
                let s = self.sign_hashes[r].sign(item);
                s * self.table[r * self.cols + c]
            })
            .collect();
        row_estimates.sort_unstable();
        row_estimates[self.rows / 2]
    }

    /// The raw signed counter table in row-major order — exposed so merge
    /// laws can assert byte equality.
    pub fn table(&self) -> &[i64] {
        &self.table
    }

    /// Returns the candidate from `candidates` with the largest estimated
    /// absolute frequency, if any.
    pub fn argmax(&self, candidates: &[Item]) -> Option<Item> {
        candidates
            .iter()
            .copied()
            .max_by_key(|&i| self.estimate(i).unsigned_abs())
    }
}

/// Exact merge: with identical (same-seed) hash functions the signed table
/// is a sum of per-update contributions, so cell-wise addition yields
/// **byte-for-byte** the sketch of the concatenated stream.
///
/// # Panics
///
/// Panics if the dimensions or hash functions differ.
impl MergeableSummary for CountSketch {
    fn merge(mut self, other: Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "merging CountSketch sketches requires equal dimensions"
        );
        assert_eq!(
            (&self.bucket_hashes, &self.sign_hashes),
            (&other.bucket_hashes, &other.sign_hashes),
            "merging CountSketch sketches requires identical hash functions (same seed)"
        );
        for (cell, add) in self.table.iter_mut().zip(&other.table) {
            *cell += add;
        }
        self
    }
}

/// Wire format: dimensions, the signed row-major table, then the bucket
/// and sign hash functions per row.
impl Snapshot for CountSketch {
    const TAG: u16 = codec::tag::COUNT_SKETCH;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        for &cell in &self.table {
            w.put_i64(cell);
        }
        for h in self.bucket_hashes.iter().chain(&self.sign_hashes) {
            h.encode_into(w);
        }
    }
}

impl Restore for CountSketch {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        if rows == 0 || cols == 0 {
            return Err(CodecError::InvalidValue {
                what: "CountSketch dimensions must be positive",
            });
        }
        let cells = r.check_grid(rows, cols, 8)?;
        let mut table = Vec::with_capacity(cells);
        for _ in 0..cells {
            table.push(r.get_i64()?);
        }
        let mut bucket_hashes = Vec::with_capacity(rows);
        for _ in 0..rows {
            bucket_hashes.push(KWiseHash::decode_from(r)?);
        }
        let mut sign_hashes = Vec::with_capacity(rows);
        for _ in 0..rows {
            sign_hashes.push(KWiseHash::decode_from(r)?);
        }
        Ok(Self {
            rows,
            cols,
            table,
            bucket_hashes,
            sign_hashes,
        })
    }
}

impl SpaceUsage for CountSketch {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_bytes(&self.table)
            + (self.bucket_hashes.len() + self.sign_hashes.len()) * std::mem::size_of::<KWiseHash>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;

    #[test]
    fn estimates_heavy_item_accurately() {
        let mut rng = default_rng(1);
        let mut cs = CountSketch::new(&mut rng, 5, 256);
        for _ in 0..10_000 {
            cs.insert(13);
        }
        for i in 0..2_000u64 {
            cs.insert(1000 + i % 400);
        }
        let est = cs.estimate(13);
        assert!((est - 10_000).abs() < 500, "estimate {est}");
    }

    #[test]
    fn handles_signed_updates() {
        let mut rng = default_rng(2);
        let mut cs = CountSketch::new(&mut rng, 5, 128);
        cs.update(7, 500);
        cs.update(7, -200);
        let est = cs.estimate(7);
        assert!((est - 300).abs() < 50, "estimate {est}");
    }

    #[test]
    fn argmax_finds_dominant_coordinate() {
        let mut rng = default_rng(3);
        let mut cs = CountSketch::new(&mut rng, 7, 512);
        for i in 0..100u64 {
            for _ in 0..(i + 1) {
                cs.insert(i);
            }
        }
        for _ in 0..5_000 {
            cs.insert(999);
        }
        let candidates: Vec<Item> = (0..100).chain(std::iter::once(999)).collect();
        assert_eq!(cs.argmax(&candidates), Some(999));
    }

    #[test]
    fn unbiasedness_across_instances() {
        // Average the estimate of a light item over many independent sketches
        // sharing the same stream; the mean should approach the true value.
        let truth = 10i64;
        let mut total = 0i64;
        let instances = 200;
        for seed in 0..instances {
            let mut rng = default_rng(100 + seed);
            let mut cs = CountSketch::new(&mut rng, 1, 32);
            for _ in 0..truth {
                cs.insert(5);
            }
            for i in 0..3_000u64 {
                cs.insert(10 + i % 100);
            }
            total += cs.estimate(5);
        }
        let mean = total as f64 / instances as f64;
        assert!((mean - truth as f64).abs() < 15.0, "mean estimate {mean}");
    }

    #[test]
    fn empty_candidates_give_none() {
        let mut rng = default_rng(4);
        let cs = CountSketch::new(&mut rng, 3, 16);
        assert_eq!(cs.argmax(&[]), None);
    }
}
