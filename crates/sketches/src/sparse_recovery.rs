//! Deterministic `k`-sparse recovery from Reed–Solomon syndromes.
//!
//! Theorem D.2 of the paper (due to Ganguly / Ganguly–Majumder) asks for a
//! deterministic structure of size `O(k log(Mn) log(n/k))` that exactly
//! recovers a `k`-sparse frequency vector from a turnstile stream. We
//! substitute the expander-based construction with the classical
//! Reed–Solomon / Prony approach, which has the same interface and the same
//! deterministic exact-recovery guarantee under the `k`-sparsity promise:
//!
//! * maintain the `2k` power-sum syndromes `S_j = Σ_i f_i · α_i^j`
//!   (`j = 0..2k-1`) over the prime field `GF(2^61 − 1)`, updated linearly
//!   per stream update;
//! * at query time run Berlekamp–Massey on the syndrome sequence to find the
//!   minimal linear recurrence (degree = sparsity), locate the support by
//!   scanning the universe for roots of the connection polynomial, and solve
//!   a Vandermonde system for the values;
//! * re-verify the candidate solution against every stored syndrome
//!   (including `extra` held-out syndromes) and return `None` on any
//!   mismatch.
//!
//! If the vector really is `k`-sparse the recovery is exact and
//! deterministic. If it is not, the verification step catches essentially
//! all such cases; the residual possibility of a >k-sparse vector colliding
//! with a sparse one on all `2k + extra` syndromes is the one place where
//! this substitution is weaker than the paper's deterministic tester
//! (Theorem D.1) — see `DESIGN.md` §2 for the discussion.

use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::vec_bytes;
use tps_streams::{Item, SignedUpdate, SpaceUsage};

/// The Mersenne prime `2^61 − 1` over which syndromes are computed.
pub const FIELD_PRIME: u64 = (1u64 << 61) - 1;

#[inline]
fn fadd(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= FIELD_PRIME {
        s - FIELD_PRIME
    } else {
        s
    }
}

#[inline]
fn fsub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + FIELD_PRIME - b
    }
}

#[inline]
fn fmul(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % FIELD_PRIME as u128) as u64
}

fn fpow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= FIELD_PRIME;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = fmul(acc, base);
        }
        base = fmul(base, base);
        exp >>= 1;
    }
    acc
}

fn finv(a: u64) -> u64 {
    assert!(!a.is_multiple_of(FIELD_PRIME), "zero has no inverse");
    fpow(a, FIELD_PRIME - 2)
}

/// Encodes a signed integer value into the field (negative values map to the
/// upper half of the field).
fn encode_value(v: i64) -> u64 {
    if v >= 0 {
        v as u64 % FIELD_PRIME
    } else {
        fsub(0, (v.unsigned_abs()) % FIELD_PRIME)
    }
}

/// Decodes a field element back to a signed integer using the half-field
/// convention.
fn decode_value(v: u64) -> i64 {
    if v <= FIELD_PRIME / 2 {
        v as i64
    } else {
        -((FIELD_PRIME - v) as i64)
    }
}

/// The field evaluation point assigned to universe item `i` (must be nonzero
/// and distinct per item).
#[inline]
fn locator(item: Item) -> u64 {
    (item % (FIELD_PRIME - 1)) + 1
}

/// Berlekamp–Massey over `GF(FIELD_PRIME)`: returns the minimal connection
/// polynomial `C(x) = 1 + c_1 x + ... + c_L x^L` of the syndrome sequence.
fn berlekamp_massey(s: &[u64]) -> Vec<u64> {
    let mut c = vec![1u64];
    let mut b = vec![1u64];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut last_discrepancy = 1u64;
    for n in 0..s.len() {
        // discrepancy d = s[n] + Σ_{i=1}^{l} c_i · s[n-i]
        let mut d = s[n];
        for i in 1..=l.min(c.len() - 1) {
            d = fadd(d, fmul(c[i], s[n - i]));
        }
        if d == 0 {
            m += 1;
            continue;
        }
        let coefficient = fmul(d, finv(last_discrepancy));
        if 2 * l <= n {
            let previous_c = c.clone();
            if c.len() < b.len() + m {
                c.resize(b.len() + m, 0);
            }
            for i in 0..b.len() {
                c[i + m] = fsub(c[i + m], fmul(coefficient, b[i]));
            }
            l = n + 1 - l;
            b = previous_c;
            last_discrepancy = d;
            m = 1;
        } else {
            if c.len() < b.len() + m {
                c.resize(b.len() + m, 0);
            }
            for i in 0..b.len() {
                c[i + m] = fsub(c[i + m], fmul(coefficient, b[i]));
            }
            m += 1;
        }
    }
    c.truncate(l + 1);
    c
}

/// Solves the Vandermonde system `Σ_t values_t · locators_t^j = syndromes_j`
/// (`j = 0..L-1`) by Gaussian elimination over the field.
fn solve_vandermonde(locators: &[u64], syndromes: &[u64]) -> Option<Vec<u64>> {
    let l = locators.len();
    debug_assert!(syndromes.len() >= l);
    // Build the augmented matrix row j: [loc_0^j, ..., loc_{l-1}^j | S_j].
    let mut matrix = vec![vec![0u64; l + 1]; l];
    for (j, row) in matrix.iter_mut().enumerate() {
        for (t, &x) in locators.iter().enumerate() {
            row[t] = fpow(x, j as u64);
        }
        row[l] = syndromes[j];
    }
    // Gaussian elimination.
    for col in 0..l {
        let pivot_row = (col..l).find(|&r| matrix[r][col] != 0)?;
        matrix.swap(col, pivot_row);
        let inv_pivot = finv(matrix[col][col]);
        for entry in matrix[col].iter_mut() {
            *entry = fmul(*entry, inv_pivot);
        }
        let pivot: Vec<u64> = matrix[col][col..=l].to_vec();
        for (r, row) in matrix.iter_mut().enumerate() {
            if r != col && row[col] != 0 {
                let factor = row[col];
                for (entry, &pval) in row[col..=l].iter_mut().zip(&pivot) {
                    *entry = fsub(*entry, fmul(factor, pval));
                }
            }
        }
    }
    Some(matrix.into_iter().map(|row| row[l]).collect())
}

/// A deterministic `k`-sparse recovery structure over turnstile streams.
#[derive(Debug, Clone)]
pub struct SparseRecovery {
    sparsity: usize,
    universe: u64,
    /// `2·sparsity + extra` power-sum syndromes.
    syndromes: Vec<u64>,
    updates_processed: u64,
}

/// The result of a successful sparse recovery: `(item, frequency)` pairs
/// sorted by item.
pub type RecoveredVector = Vec<(Item, i64)>;

impl SparseRecovery {
    /// Number of held-out verification syndromes beyond the `2k` needed for
    /// recovery.
    const EXTRA_SYNDROMES: usize = 4;

    /// Creates a recovery structure for vectors over the universe `[0,
    /// universe)` with at most `sparsity` nonzero coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity == 0` or `universe == 0`.
    pub fn new(sparsity: usize, universe: u64) -> Self {
        assert!(sparsity > 0, "sparsity must be positive");
        assert!(universe > 0, "universe must be non-empty");
        Self {
            sparsity,
            universe,
            syndromes: vec![0; 2 * sparsity + Self::EXTRA_SYNDROMES],
            updates_processed: 0,
        }
    }

    /// The sparsity budget `k`.
    pub fn sparsity(&self) -> usize {
        self.sparsity
    }

    /// The universe size `n` the structure recovers over.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of updates processed.
    pub fn updates_processed(&self) -> u64 {
        self.updates_processed
    }

    /// Whether [`SparseRecovery::absorb`] accepts `other`: same sparsity
    /// budget and universe (the syndrome vectors are then evaluations of
    /// the same power sums and add componentwise).
    pub fn merge_compatible(&self, other: &Self) -> bool {
        self.sparsity == other.sparsity && self.universe == other.universe
    }

    /// Merges `other` into `self` by componentwise field addition of the
    /// syndromes. The syndromes are linear in the frequency vector, so the
    /// result is **byte-identical** to the structure a single instance
    /// would hold after processing `self`'s stream followed by `other`'s —
    /// under *any* partitioning of the updates, not just item-disjoint
    /// ones. No randomness is involved.
    ///
    /// # Panics
    ///
    /// Panics if the sparsity budgets or universes differ.
    pub fn absorb(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "merging sparse recoveries requires equal sparsity and universe"
        );
        for (s, &o) in self.syndromes.iter_mut().zip(&other.syndromes) {
            *s = fadd(*s, o);
        }
        self.updates_processed += other.updates_processed;
    }

    /// Processes one signed update (`O(k)` field operations).
    pub fn update(&mut self, update: SignedUpdate) {
        self.update_coalesced(update.item, update.delta, 1);
    }

    /// Applies `updates` signed updates to `item` whose deltas sum to
    /// `total_delta`, in one `O(k)` syndrome pass. The syndromes are linear
    /// in the encoded delta (`encode` is the canonical ring homomorphism
    /// `ℤ → GF(p)`), so this leaves the structure in exactly the state
    /// `updates` individual [`Self::update`] calls summing to the same
    /// delta would — the coalesced fast path batched front-ends use.
    pub fn update_coalesced(&mut self, item: Item, total_delta: i64, updates: u64) {
        assert!(item < self.universe, "item outside the declared universe");
        self.updates_processed += updates;
        let delta = encode_value(total_delta);
        if delta == 0 {
            return;
        }
        let x = locator(item);
        let mut power = 1u64; // x^0
        for s in self.syndromes.iter_mut() {
            *s = fadd(*s, fmul(delta, power));
            power = fmul(power, x);
        }
    }

    /// Processes a unit insertion.
    pub fn insert(&mut self, item: Item) {
        self.update(SignedUpdate::insert(item));
    }

    /// Processes a unit deletion.
    pub fn delete(&mut self, item: Item) {
        self.update(SignedUpdate::delete(item));
    }

    /// Whether every syndrome is zero (true in particular for the zero
    /// vector).
    pub fn is_zero(&self) -> bool {
        self.syndromes.iter().all(|&s| s == 0)
    }

    /// Attempts to recover the frequency vector. Returns `Some(pairs)` if a
    /// vector with at most `k` nonzero coordinates reproduces every stored
    /// syndrome; `None` if the vector is detectably not `k`-sparse.
    pub fn recover(&self) -> Option<RecoveredVector> {
        if self.is_zero() {
            return Some(Vec::new());
        }
        let connection = berlekamp_massey(&self.syndromes[..2 * self.sparsity]);
        let degree = connection.len() - 1;
        if degree == 0 || degree > self.sparsity {
            return None;
        }
        // Locate support: items whose locator's inverse is a root of C(x),
        // i.e. C evaluated at locator(i)^{-1} equals zero. Equivalently,
        // evaluate the reversed polynomial at locator(i).
        let mut support = Vec::with_capacity(degree);
        for item in 0..self.universe {
            let x = locator(item);
            // Evaluate Σ_j c_j · x^{-j} = 0 ⟺ Σ_j c_j · x^{L-j} = 0.
            let mut acc = 0u64;
            for &coef in &connection {
                acc = fadd(fmul(acc, x), coef);
            }
            // Horner above evaluates c_0 x^L + c_1 x^{L-1} + ... + c_L,
            // which is x^L · C(1/x).
            if acc == 0 {
                support.push(item);
                if support.len() > degree {
                    return None;
                }
            }
        }
        if support.len() != degree {
            return None;
        }
        let locators: Vec<u64> = support.iter().map(|&i| locator(i)).collect();
        let values = solve_vandermonde(&locators, &self.syndromes)?;
        // Verify the candidate against every stored syndrome.
        let mut expected = vec![0u64; self.syndromes.len()];
        for (t, &x) in locators.iter().enumerate() {
            let mut power = 1u64;
            for e in expected.iter_mut() {
                *e = fadd(*e, fmul(values[t], power));
                power = fmul(power, x);
            }
        }
        if expected != self.syndromes {
            return None;
        }
        let mut out: RecoveredVector = support
            .into_iter()
            .zip(values.into_iter().map(decode_value))
            .filter(|&(_, v)| v != 0)
            .collect();
        out.sort_unstable_by_key(|&(i, _)| i);
        Some(out)
    }
}

/// Wire format: sparsity, universe, update count, then the full syndrome
/// vector in power order. The structure is deterministic (no RNG), so the
/// syndromes *are* the complete state.
impl Snapshot for SparseRecovery {
    const TAG: u16 = codec::tag::SPARSE_RECOVERY;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_usize(self.sparsity);
        w.put_u64(self.universe);
        w.put_u64(self.updates_processed);
        w.put_len(self.syndromes.len());
        for &s in &self.syndromes {
            w.put_u64(s);
        }
    }
}

impl Restore for SparseRecovery {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let sparsity = r.get_usize()?;
        if sparsity == 0 {
            return Err(CodecError::InvalidValue {
                what: "sparsity must be positive",
            });
        }
        let universe = r.get_u64()?;
        if universe == 0 {
            return Err(CodecError::InvalidValue {
                what: "universe must be non-empty",
            });
        }
        let updates_processed = r.get_u64()?;
        let len = r.get_len(8)?;
        // The syndrome count is a function of the sparsity (2k + extra);
        // a mismatch means the declared sparsity and the vector disagree.
        if len
            != sparsity
                .checked_mul(2)
                .and_then(|n| n.checked_add(Self::EXTRA_SYNDROMES))
                .ok_or(CodecError::InvalidValue {
                    what: "sparsity overflows the syndrome count",
                })?
        {
            return Err(CodecError::InvalidValue {
                what: "syndrome count must be 2·sparsity + 4",
            });
        }
        let mut syndromes = Vec::with_capacity(len);
        for _ in 0..len {
            let s = r.get_u64()?;
            if s >= FIELD_PRIME {
                return Err(CodecError::InvalidValue {
                    what: "syndrome outside the field",
                });
            }
            syndromes.push(s);
        }
        Ok(Self {
            sparsity,
            universe,
            syndromes,
            updates_processed,
        })
    }
}

impl SpaceUsage for SparseRecovery {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.syndromes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_arithmetic_basics() {
        assert_eq!(fadd(FIELD_PRIME - 1, 1), 0);
        assert_eq!(fsub(0, 1), FIELD_PRIME - 1);
        assert_eq!(fmul(finv(7), 7), 1);
        assert_eq!(fpow(3, 0), 1);
        assert_eq!(fpow(2, 61) % FIELD_PRIME, 1); // 2^61 ≡ 1 mod 2^61 - 1
        assert_eq!(decode_value(encode_value(-42)), -42);
        assert_eq!(decode_value(encode_value(42)), 42);
    }

    #[test]
    fn berlekamp_massey_finds_short_recurrence() {
        // Sequence s_j = 2·3^j + 5·7^j has a degree-2 recurrence.
        let s: Vec<u64> = (0..8u64)
            .map(|j| fadd(fmul(2, fpow(3, j)), fmul(5, fpow(7, j))))
            .collect();
        let c = berlekamp_massey(&s);
        assert_eq!(c.len() - 1, 2, "recurrence degree should be 2");
    }

    #[test]
    fn recovers_exact_sparse_vector() {
        let mut sr = SparseRecovery::new(4, 1000);
        let truth = [(3u64, 5i64), (77, 2), (901, 9)];
        for &(item, count) in &truth {
            for _ in 0..count {
                sr.insert(item);
            }
        }
        let recovered = sr.recover().expect("recovery should succeed");
        assert_eq!(recovered, vec![(3, 5), (77, 2), (901, 9)]);
    }

    #[test]
    fn recovers_after_deletions_and_negative_values() {
        let mut sr = SparseRecovery::new(3, 100);
        sr.insert(10);
        sr.insert(10);
        sr.delete(10);
        sr.delete(20); // goes negative (general turnstile)
        sr.insert(30);
        let recovered = sr.recover().expect("recovery should succeed");
        assert_eq!(recovered, vec![(10, 1), (20, -1), (30, 1)]);
    }

    #[test]
    fn zero_vector_recovers_empty() {
        let mut sr = SparseRecovery::new(2, 50);
        sr.insert(7);
        sr.delete(7);
        assert!(sr.is_zero());
        assert_eq!(sr.recover().unwrap(), Vec::new());
    }

    #[test]
    fn detects_over_sparse_vector() {
        let mut sr = SparseRecovery::new(2, 200);
        for item in 0..10u64 {
            sr.insert(item);
        }
        assert!(
            sr.recover().is_none(),
            "10-sparse vector must not pass a 2-sparse recovery"
        );
    }

    #[test]
    fn exactly_k_sparse_vector_is_recovered() {
        let k = 8usize;
        let mut sr = SparseRecovery::new(k, 10_000);
        let mut expected = Vec::new();
        for t in 0..k as u64 {
            let item = t * 997 + 13;
            let count = (t + 1) as i64;
            for _ in 0..count {
                sr.insert(item);
            }
            expected.push((item, count));
        }
        expected.sort_unstable_by_key(|&(i, _)| i);
        assert_eq!(sr.recover().unwrap(), expected);
    }

    #[test]
    fn cancellation_down_to_sparse_is_recovered() {
        // Insert widely, then delete most of it so the *final* vector is
        // sparse even though the stream touched many items.
        let mut sr = SparseRecovery::new(3, 500);
        for item in 0..100u64 {
            sr.insert(item);
        }
        for item in 0..100u64 {
            if item != 5 && item != 50 {
                sr.delete(item);
            }
        }
        let recovered = sr.recover().unwrap();
        assert_eq!(recovered, vec![(5, 1), (50, 1)]);
    }

    #[test]
    fn space_is_linear_in_sparsity_not_universe() {
        let small = SparseRecovery::new(4, 1_000_000);
        let large = SparseRecovery::new(64, 1_000_000);
        assert!(small.space_bytes() < large.space_bytes());
        assert!(
            small.space_bytes() < 1_000,
            "space must not depend on the universe size"
        );
    }

    #[test]
    #[should_panic(expected = "outside the declared universe")]
    fn out_of_universe_item_panics() {
        let mut sr = SparseRecovery::new(2, 10);
        sr.insert(10);
    }

    #[test]
    fn absorb_is_byte_identical_to_sequential_ingest() {
        // Linearity: any split of the update sequence absorbs back to the
        // sequential state, snapshot bytes included.
        let updates: Vec<SignedUpdate> = (0..200u64)
            .map(|i| SignedUpdate {
                item: i % 37,
                delta: if i % 3 == 0 { -2 } else { 5 },
            })
            .collect();
        let mut sequential = SparseRecovery::new(5, 40);
        for &u in &updates {
            sequential.update(u);
        }
        for split in [0, 1, 50, 199, 200] {
            let mut left = SparseRecovery::new(5, 40);
            let mut right = SparseRecovery::new(5, 40);
            for &u in &updates[..split] {
                left.update(u);
            }
            for &u in &updates[split..] {
                right.update(u);
            }
            assert!(left.merge_compatible(&right));
            left.absorb(&right);
            assert_eq!(left.snapshot(), sequential.snapshot(), "split {split}");
        }
    }

    #[test]
    #[should_panic(expected = "equal sparsity and universe")]
    fn absorb_rejects_mismatched_shapes() {
        let mut a = SparseRecovery::new(2, 10);
        let b = SparseRecovery::new(3, 10);
        assert!(!a.merge_compatible(&b));
        a.absorb(&b);
    }

    #[test]
    fn snapshot_round_trips_and_validates() {
        let mut sr = SparseRecovery::new(4, 1000);
        sr.insert(3);
        sr.delete(901);
        let bytes = sr.snapshot();
        let restored = SparseRecovery::restore(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
        assert_eq!(restored.sparsity(), 4);
        assert_eq!(restored.universe(), 1000);
        assert_eq!(restored.updates_processed(), 2);
        assert_eq!(restored.recover(), sr.recover());
    }
}
