//! Sampling-based `F_p` estimation for insertion-only streams
//! (Alon–Matias–Szegedy estimator).
//!
//! For each of `width` independent groups, reservoir-sample a stream
//! position, count the number `c` of subsequent occurrences of the sampled
//! item (inclusive), and output `m · (c^p − (c−1)^p)`. This is an unbiased
//! estimator of `F_p`; a median of means over groups yields a constant-factor
//! approximation with high probability. It is the estimation counterpart of
//! the very telescoping identity that powers the truly perfect samplers, and
//! it is the `Λ` algorithm plugged into the smooth-histogram framework for
//! sliding-window `L_p` estimation (Theorem A.5).

use tps_random::{ReservoirItem, ReservoirSampler, StreamRng, Xoshiro256};
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::vec_bytes;
use tps_streams::{Estimator, Item, SpaceUsage};

/// One AMS estimation unit: a reservoir-sampled item and its suffix count.
#[derive(Debug, Clone)]
struct Unit {
    reservoir: ReservoirSampler<Item>,
    /// Occurrences of the sampled item from its sampling position onwards
    /// (inclusive of the sampled occurrence).
    count: u64,
}

/// A median-of-means AMS `F_p` estimator for insertion-only streams.
#[derive(Debug, Clone)]
pub struct AmsFpEstimator {
    p: f64,
    rows: usize,
    cols: usize,
    units: Vec<Unit>,
    rng: Xoshiro256,
    processed: u64,
}

impl AmsFpEstimator {
    /// Creates an estimator of `F_p` with `rows × cols` estimation units.
    ///
    /// # Panics
    ///
    /// Panics if `p ≤ 0` or either dimension is zero.
    pub fn new(p: f64, rows: usize, cols: usize, mut rng: Xoshiro256) -> Self {
        assert!(p > 0.0, "p must be positive");
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        let units = (0..rows * cols)
            .map(|_| Unit {
                reservoir: ReservoirSampler::new(1),
                count: 0,
            })
            .collect();
        let _ = rng.next_u64();
        Self {
            p,
            rows,
            cols,
            units,
            rng,
            processed: 0,
        }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Current `F_p` estimate (median of row means of the per-unit unbiased
    /// estimates). Returns 0 for an empty stream.
    pub fn fp_estimate(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        let m = self.processed as f64;
        let mut row_means: Vec<f64> = (0..self.rows)
            .map(|r| {
                let start = r * self.cols;
                let sum: f64 = self.units[start..start + self.cols]
                    .iter()
                    .map(|u| {
                        let c = u.count as f64;
                        if c == 0.0 {
                            0.0
                        } else {
                            m * (c.powf(self.p) - (c - 1.0).powf(self.p))
                        }
                    })
                    .sum();
                sum / self.cols as f64
            })
            .collect();
        row_means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        row_means[self.rows / 2]
    }
}

impl Estimator for AmsFpEstimator {
    fn update(&mut self, item: Item) {
        self.processed += 1;
        for unit in &mut self.units {
            let replaced = unit.reservoir.offer(&mut self.rng, item);
            if replaced {
                unit.count = 1;
            } else if unit.reservoir.single().map(|s| s.value) == Some(item) {
                unit.count += 1;
            }
        }
    }

    fn estimate(&self) -> f64 {
        self.fp_estimate()
    }
}

/// Wire format: `p`, dimensions, processed, the RNG position, then one
/// record per unit (the size-1 reservoir's seen count, held sample and
/// suffix count).
impl Snapshot for AmsFpEstimator {
    const TAG: u16 = codec::tag::AMS_FP_ESTIMATOR;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.p);
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        w.put_u64(self.processed);
        self.rng.encode_into(w);
        for unit in &self.units {
            w.put_u64(unit.reservoir.seen());
            match unit.reservoir.single() {
                Some(held) => {
                    w.put_u8(1);
                    w.put_u64(held.value);
                    w.put_u64(held.timestamp);
                }
                None => w.put_u8(0),
            }
            w.put_u64(unit.count);
        }
    }
}

impl Restore for AmsFpEstimator {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let p = r.get_f64()?;
        if !(p > 0.0 && p.is_finite()) {
            return Err(CodecError::InvalidValue {
                what: "AMS exponent must be positive and finite",
            });
        }
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        if rows == 0 || cols == 0 {
            return Err(CodecError::InvalidValue {
                what: "AMS dimensions must be positive",
            });
        }
        let processed = r.get_u64()?;
        let rng = Xoshiro256::decode_from(r)?;
        // Each unit record is at least 17 bytes (seen, empty flag, count).
        let units_len = r.check_grid(rows, cols, 17)?;
        let mut units = Vec::with_capacity(units_len);
        for _ in 0..units_len {
            let seen = r.get_u64()?;
            let held = match r.get_u8()? {
                0 => Vec::new(),
                1 => {
                    let value = r.get_u64()?;
                    let timestamp = r.get_u64()?;
                    if timestamp == 0 || timestamp > seen {
                        return Err(CodecError::InvalidValue {
                            what: "reservoir timestamp outside the seen range",
                        });
                    }
                    vec![ReservoirItem { value, timestamp }]
                }
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "reservoir held flag must be 0 or 1",
                    })
                }
            };
            if held.is_empty() && seen > 0 {
                return Err(CodecError::InvalidValue {
                    what: "a non-empty size-1 reservoir must hold a sample",
                });
            }
            let count = r.get_u64()?;
            units.push(Unit {
                reservoir: ReservoirSampler::from_parts(1, seen, held),
                count,
            });
        }
        Ok(Self {
            p,
            rows,
            cols,
            units,
            rng,
            processed,
        })
    }
}

impl SpaceUsage for AmsFpEstimator {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;
    use tps_streams::frequency::FrequencyVector;

    fn relative_error(p: f64, stream: &[Item], rows: usize, cols: usize, seed: u64) -> f64 {
        let mut est = AmsFpEstimator::new(p, rows, cols, default_rng(seed));
        for &x in stream {
            Estimator::update(&mut est, x);
        }
        let truth = FrequencyVector::from_stream(stream).fp(p);
        (est.fp_estimate() / truth - 1.0).abs()
    }

    #[test]
    fn f2_estimate_on_moderately_skewed_stream() {
        let stream: Vec<Item> = (0..20_000u64).map(|i| i % 50).collect();
        let err = relative_error(2.0, &stream, 5, 300, 11);
        assert!(err < 0.35, "relative error {err}");
    }

    #[test]
    fn f1_estimate_is_nearly_exact() {
        // For p = 1 every unit's estimate is exactly m, so the estimator is
        // exact regardless of the stream.
        let stream: Vec<Item> = (0..5_000u64).map(|i| i % 7).collect();
        let err = relative_error(1.0, &stream, 3, 10, 12);
        assert!(err < 1e-9, "relative error {err}");
    }

    #[test]
    fn fractional_p_estimate() {
        let stream: Vec<Item> = (0..20_000u64).map(|i| i % 200).collect();
        let err = relative_error(0.5, &stream, 5, 300, 13);
        assert!(err < 0.35, "relative error {err}");
    }

    #[test]
    fn empty_stream_estimates_zero() {
        let est = AmsFpEstimator::new(2.0, 3, 5, default_rng(1));
        assert_eq!(est.fp_estimate(), 0.0);
    }

    #[test]
    fn estimate_tracks_growing_stream() {
        let mut est = AmsFpEstimator::new(2.0, 5, 200, default_rng(14));
        let mut truth_stream = Vec::new();
        for i in 0..10_000u64 {
            let item = i % 20;
            Estimator::update(&mut est, item);
            truth_stream.push(item);
        }
        let truth = FrequencyVector::from_stream(&truth_stream).fp(2.0);
        let ratio = est.fp_estimate() / truth;
        assert!((0.6..1.6).contains(&ratio), "ratio {ratio}");
    }
}
