//! CountMin sketch (Cormode–Muthukrishnan).
//!
//! A randomized frequency summary that never underestimates:
//! `f_i ≤ f̂_i ≤ f_i + ε·m` with probability `1 − δ` using `⌈e/ε⌉` columns
//! and `⌈ln 1/δ⌉` rows. Used here (a) by the fast baseline perfect sampler
//! for heavy-hitter recovery, and (b) in the ablation experiment showing why
//! substituting a randomized normaliser for the deterministic Misra–Gries
//! bound breaks truly-perfect sampling: the failure probability, however
//! small, becomes additive error in the output distribution.

use tps_random::{KWiseHash, StreamRng};
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::vec_bytes;
use tps_streams::{Item, MergeableSummary, SpaceUsage};

/// A CountMin sketch over unit insertions.
#[derive(Debug, Clone)]
pub struct CountMin {
    rows: usize,
    cols: usize,
    table: Vec<u64>,
    hashes: Vec<KWiseHash>,
    processed: u64,
}

impl CountMin {
    /// Creates a sketch with the given number of rows and columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: StreamRng>(rng: &mut R, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "CountMin dimensions must be positive");
        let hashes = (0..rows).map(|_| KWiseHash::new(rng, 2)).collect();
        Self {
            rows,
            cols,
            table: vec![0; rows * cols],
            hashes,
            processed: 0,
        }
    }

    /// Creates a sketch sized for additive error `ε·m` with failure
    /// probability `δ` (per query).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 1` and `0 < δ < 1`.
    pub fn with_error<R: StreamRng>(rng: &mut R, epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let cols = (std::f64::consts::E / epsilon).ceil() as usize;
        let rows = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(rng, rows, cols)
    }

    /// Number of updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The `(rows, cols)` dimensions of the sketch table.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Processes one unit insertion.
    pub fn update(&mut self, item: Item) {
        self.processed += 1;
        for (r, h) in self.hashes.iter().enumerate() {
            let c = h.bucket(item, self.cols);
            self.table[r * self.cols + c] += 1;
        }
    }

    /// Processes a contiguous batch of unit insertions, vectorised per
    /// distinct item.
    ///
    /// The table is a sum of per-item contributions, so the batch is first
    /// aggregated into `(item, multiplicity)` pairs and each row is then
    /// touched once per *distinct* item: the `rows` hash evaluations are
    /// paid once per distinct item instead of once per occurrence. The
    /// final sketch state is exactly the per-item loop's.
    pub fn update_batch(&mut self, items: &[Item]) {
        self.processed += items.len() as u64;
        for (item, count) in tps_streams::count_multiplicities(items) {
            for (r, h) in self.hashes.iter().enumerate() {
                let c = h.bucket(item, self.cols);
                self.table[r * self.cols + c] += count;
            }
        }
    }

    /// The point estimate `f̂_i = min_r table[r][h_r(i)]`, which never
    /// underestimates the true frequency.
    pub fn estimate(&self, item: Item) -> u64 {
        self.hashes
            .iter()
            .enumerate()
            .map(|(r, h)| self.table[r * self.cols + h.bucket(item, self.cols)])
            .min()
            .unwrap_or(0)
    }

    /// The raw counter table in row-major order (row `r`, column `c` at
    /// `r * cols + c`) — exposed so merge laws can assert byte equality.
    pub fn table(&self) -> &[u64] {
        &self.table
    }

    /// An upper bound on `‖f‖_∞` derived from the sketch: the maximum point
    /// estimate over a caller-provided candidate set, or the total mass if
    /// the candidate set is empty. Correct only when the candidate set
    /// contains the true maximiser (randomized guarantee — see the module
    /// docs for why this is *not* good enough for truly perfect sampling).
    pub fn max_frequency_upper_bound(&self, candidates: &[Item]) -> u64 {
        if candidates.is_empty() {
            return self.processed;
        }
        candidates
            .iter()
            .map(|&i| self.estimate(i))
            .max()
            .unwrap_or(0)
    }
}

/// Exact merge: two sketches sharing their hash functions (built from the
/// same RNG seed) are sums of per-update contributions, so adding the
/// tables cell-wise yields **byte-for-byte** the sketch of the
/// concatenated stream.
///
/// # Panics
///
/// Panics if the dimensions or hash functions differ.
impl MergeableSummary for CountMin {
    fn merge(mut self, other: Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "merging CountMin sketches requires equal dimensions"
        );
        assert_eq!(
            self.hashes, other.hashes,
            "merging CountMin sketches requires identical hash functions (same seed)"
        );
        for (cell, add) in self.table.iter_mut().zip(&other.table) {
            *cell += add;
        }
        self.processed += other.processed;
        self
    }
}

/// Wire format: dimensions, processed, the row-major counter table, then
/// the per-row hash functions (which are part of the state: merging and
/// restored-estimate equality both require the same hashes).
impl Snapshot for CountMin {
    const TAG: u16 = codec::tag::COUNT_MIN;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        w.put_u64(self.processed);
        for &cell in &self.table {
            w.put_u64(cell);
        }
        for h in &self.hashes {
            h.encode_into(w);
        }
    }
}

impl Restore for CountMin {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        if rows == 0 || cols == 0 {
            return Err(CodecError::InvalidValue {
                what: "CountMin dimensions must be positive",
            });
        }
        let processed = r.get_u64()?;
        let cells = r.check_grid(rows, cols, 8)?;
        let mut table = Vec::with_capacity(cells);
        for _ in 0..cells {
            table.push(r.get_u64()?);
        }
        let mut hashes = Vec::with_capacity(rows);
        for _ in 0..rows {
            hashes.push(KWiseHash::decode_from(r)?);
        }
        Ok(Self {
            rows,
            cols,
            table,
            hashes,
            processed,
        })
    }
}

impl SpaceUsage for CountMin {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_bytes(&self.table)
            + self.hashes.len() * std::mem::size_of::<KWiseHash>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;
    use tps_streams::frequency::FrequencyVector;

    #[test]
    fn never_underestimates() {
        let mut rng = default_rng(1);
        let mut cm = CountMin::new(&mut rng, 4, 64);
        let stream: Vec<Item> = (0..20_000u64).map(|i| i % 500).collect();
        for &x in &stream {
            cm.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        for (item, freq) in truth.iter() {
            assert!(cm.estimate(item) >= freq as u64);
        }
    }

    #[test]
    fn error_stays_within_epsilon_m_for_most_items() {
        let mut rng = default_rng(2);
        let epsilon = 0.01;
        let mut cm = CountMin::with_error(&mut rng, epsilon, 0.01);
        let stream: Vec<Item> = (0..50_000u64).map(|i| i % 1000).collect();
        for &x in &stream {
            cm.update(x);
        }
        let m = stream.len() as f64;
        let truth = FrequencyVector::from_stream(&stream);
        let mut violations = 0;
        for (item, freq) in truth.iter() {
            if (cm.estimate(item) - freq as u64) as f64 > epsilon * m {
                violations += 1;
            }
        }
        assert!(
            violations < 20,
            "too many error-bound violations: {violations}"
        );
    }

    #[test]
    fn heavy_item_estimate_is_close() {
        let mut rng = default_rng(3);
        let mut cm = CountMin::new(&mut rng, 5, 256);
        for _ in 0..10_000 {
            cm.update(42);
        }
        for i in 0..1_000u64 {
            cm.update(i + 100);
        }
        let est = cm.estimate(42);
        assert!((10_000..=10_200).contains(&est), "estimate {est}");
    }

    #[test]
    fn max_bound_from_candidates() {
        let mut rng = default_rng(4);
        let mut cm = CountMin::new(&mut rng, 4, 128);
        for _ in 0..500 {
            cm.update(7);
        }
        cm.update(9);
        assert!(cm.max_frequency_upper_bound(&[7, 9]) >= 500);
        assert_eq!(cm.max_frequency_upper_bound(&[]), 501);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let mut rng = default_rng(5);
        let _ = CountMin::new(&mut rng, 0, 8);
    }
}
