//! SpaceSaving heavy hitters (Metwally, Agrawal, El Abbadi).
//!
//! A deterministic alternative to Misra–Gries with the complementary
//! estimate direction: SpaceSaving *overestimates* (`f_i ≤ f̂_i ≤ f_i +
//! m/k`), which makes `max_i f̂_i` directly an upper bound on `‖f‖_∞`. The
//! ablation benchmarks compare it against Misra–Gries as the normaliser of
//! the truly perfect `L_p` sampler.

use std::collections::HashMap;
use tps_streams::space::hashmap_bytes;
use tps_streams::{Item, SpaceUsage};

/// The SpaceSaving summary with a fixed number of counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// item -> (count, overestimation amount at admission time)
    counters: HashMap<Item, (u64, u64)>,
    processed: u64,
}

impl SpaceSaving {
    /// Creates a summary with `capacity` counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving needs at least one counter");
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            processed: 0,
        }
    }

    /// Number of stream updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Processes one unit insertion.
    pub fn update(&mut self, item: Item) {
        self.processed += 1;
        if let Some((c, _)) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, (1, 0));
            return;
        }
        // Evict the minimum-count item and inherit its count as the
        // overestimation baseline.
        let (&min_item, &(min_count, _)) = self
            .counters
            .iter()
            .min_by_key(|&(item, &(c, _))| (c, *item))
            .expect("non-empty");
        self.counters.remove(&min_item);
        self.counters.insert(item, (min_count + 1, min_count));
    }

    /// The overestimate `f̂_i ≥ f_i` for a tracked item, or the global error
    /// bound for untracked items.
    pub fn estimate(&self, item: Item) -> u64 {
        match self.counters.get(&item) {
            Some(&(c, _)) => c,
            None => self.error_bound(),
        }
    }

    /// The deterministic error bound `m / capacity`: every estimate satisfies
    /// `f_i ≤ f̂_i ≤ f_i + error`.
    pub fn error_bound(&self) -> u64 {
        self.processed / self.capacity as u64
    }

    /// A certain upper bound on `‖f‖_∞` (the maximum stored count, which
    /// overestimates every frequency it tracks and the minimum count bounds
    /// everything untracked).
    pub fn max_frequency_upper_bound(&self) -> u64 {
        self.counters.values().map(|&(c, _)| c).max().unwrap_or(0)
    }

    /// Tracked items with guaranteed-frequency lower bounds
    /// (`count − overestimate`), sorted by decreasing count.
    pub fn heavy_hitters(&self) -> Vec<(Item, u64)> {
        let mut v: Vec<(Item, u64)> = self
            .counters
            .iter()
            .map(|(&i, &(c, over))| (i, c - over))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl SpaceUsage for SpaceSaving {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + hashmap_bytes(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::FrequencyVector;

    fn check_invariant(stream: &[Item], capacity: usize) {
        let mut ss = SpaceSaving::new(capacity);
        for &x in stream {
            ss.update(x);
        }
        let truth = FrequencyVector::from_stream(stream);
        let err = ss.error_bound();
        for (item, freq) in truth.iter() {
            let est = ss.estimate(item);
            assert!(
                est >= freq as u64 || est >= err,
                "estimate must overestimate"
            );
            assert!(est <= freq as u64 + err, "estimate exceeds error bound");
        }
        assert!(ss.max_frequency_upper_bound() >= truth.l_inf());
    }

    #[test]
    fn invariants_on_skewed_stream() {
        let mut stream = Vec::new();
        for i in 0..150u64 {
            for _ in 0..(150 - i) {
                stream.push(i);
            }
        }
        check_invariant(&stream, 10);
        check_invariant(&stream, 64);
    }

    #[test]
    fn invariants_on_cyclic_stream() {
        let stream: Vec<Item> = (0..6_000u64).map(|i| i % 300).collect();
        check_invariant(&stream, 16);
    }

    #[test]
    fn max_bound_is_tight_for_single_heavy_item() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..1000 {
            ss.update(3);
        }
        assert_eq!(ss.max_frequency_upper_bound(), 1000);
        assert_eq!(ss.estimate(3), 1000);
    }

    #[test]
    fn heavy_hitters_lower_bounds_are_sound() {
        let mut stream = Vec::new();
        for i in 0..3_000u64 {
            stream.push(i % 200);
            if i % 2 == 0 {
                stream.push(9999);
            }
        }
        let mut ss = SpaceSaving::new(32);
        for &x in &stream {
            ss.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        for (item, lower) in ss.heavy_hitters() {
            assert!(
                lower <= truth.get(item) as u64,
                "guaranteed count must be a lower bound"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::new(0);
    }
}
