//! SpaceSaving heavy hitters (Metwally, Agrawal, El Abbadi).
//!
//! A deterministic alternative to Misra–Gries with the complementary
//! estimate direction: SpaceSaving *overestimates* (`f_i ≤ f̂_i ≤ f_i +
//! ⌈m/k⌉`), which makes `max_i f̂_i` directly an upper bound on `‖f‖_∞`. The
//! ablation benchmarks compare it against Misra–Gries as the normaliser of
//! the truly perfect `L_p` sampler.
//!
//! Eviction is driven by a count-bucket index (`count → items at that
//! count`, the flat analogue of the original paper's stream-summary list):
//! finding the minimum-count victim is an `O(log k)` ordered-map lookup
//! instead of a full `O(k)` scan, so saturated-stream ingest is
//! `O(log k)` per update rather than quadratic in the counter budget. The
//! victim choice (minimum count, ties broken by smallest item) is identical
//! to the historical full-scan implementation, so every estimate is
//! unchanged.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::hashmap_bytes;
use tps_streams::{Item, MergeableSummary, SpaceUsage};

/// The SpaceSaving summary with a fixed number of counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// item -> (count, overestimation amount at admission time)
    counters: HashMap<Item, (u64, u64)>,
    /// count -> items currently holding that count; mirrors `counters` so
    /// the eviction victim (min count, then smallest item) is an ordered
    /// lookup instead of a full scan.
    buckets: BTreeMap<u64, BTreeSet<Item>>,
    processed: u64,
    /// Extra additive error inherited from [`MergeableSummary::merge`]
    /// (zero for a summary that only ever ingested a stream directly).
    merge_slack: u64,
}

impl SpaceSaving {
    /// Creates a summary with `capacity` counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving needs at least one counter");
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            buckets: BTreeMap::new(),
            processed: 0,
            merge_slack: 0,
        }
    }

    /// Number of stream updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Moves `item` from bucket `from` to bucket `to` in the count index.
    fn move_bucket(&mut self, item: Item, from: u64, to: u64) {
        if let Entry::Occupied(mut bucket) = self.buckets.entry(from) {
            bucket.get_mut().remove(&item);
            if bucket.get().is_empty() {
                bucket.remove();
            }
        }
        self.buckets.entry(to).or_default().insert(item);
    }

    /// Removes and returns the eviction victim: the minimum-count item,
    /// ties broken by smallest item id (the historical full-scan order).
    fn pop_min(&mut self) -> (Item, u64) {
        let mut bucket = self.buckets.first_entry().expect("non-empty summary");
        let count = *bucket.key();
        let item = *bucket.get().first().expect("buckets are never empty");
        bucket.get_mut().remove(&item);
        if bucket.get().is_empty() {
            bucket.remove();
        }
        (item, count)
    }

    /// Processes one unit insertion.
    pub fn update(&mut self, item: Item) {
        self.processed += 1;
        if let Some(entry) = self.counters.get_mut(&item) {
            entry.0 += 1;
            let count = entry.0;
            self.move_bucket(item, count - 1, count);
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, (1, 0));
            self.buckets.entry(1).or_default().insert(item);
            return;
        }
        // Evict the minimum-count item and inherit its count as the
        // overestimation baseline.
        let (min_item, min_count) = self.pop_min();
        self.counters.remove(&min_item);
        self.counters.insert(item, (min_count + 1, min_count));
        self.buckets.entry(min_count + 1).or_default().insert(item);
    }

    /// The overestimate `f̂_i ≥ f_i` for a tracked item, or the global error
    /// bound for untracked items.
    pub fn estimate(&self, item: Item) -> u64 {
        match self.counters.get(&item) {
            Some(&(c, _)) => c,
            None => self.error_bound(),
        }
    }

    /// The deterministic error bound `⌈m / capacity⌉` (plus any slack from
    /// merging): every estimate satisfies `f_i ≤ f̂_i ≤ f_i + error`.
    ///
    /// The ceiling is the documented `⌈m/k⌉` contract — the integer bound
    /// that never under-reports the classical real-valued `m/k` guarantee.
    /// (For a directly-ingested summary the floor is in fact also sound —
    /// counters are integers summing to exactly `m`, so the min counter is
    /// at most `⌊m/k⌋` — but the reported bound follows the documented
    /// contract and stays conservative under merge slack.)
    pub fn error_bound(&self) -> u64 {
        self.processed.div_ceil(self.capacity as u64) + self.merge_slack
    }

    /// A certain upper bound on `‖f‖_∞` (the maximum stored count, which
    /// overestimates every frequency it tracks and the minimum count bounds
    /// everything untracked).
    pub fn max_frequency_upper_bound(&self) -> u64 {
        self.counters.values().map(|&(c, _)| c).max().unwrap_or(0)
    }

    /// Tracked items with guaranteed-frequency lower bounds
    /// (`count − overestimate`), sorted by decreasing count.
    pub fn heavy_hitters(&self) -> Vec<(Item, u64)> {
        let mut v: Vec<(Item, u64)> = self
            .counters
            .iter()
            .map(|(&i, &(c, over))| (i, c - over))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Merge with additive error bounds: per item the upper estimates of the
/// two inputs are summed (an absent side contributes its `error_bound`,
/// which upper-bounds anything it left untracked), the `capacity` largest
/// survive, and the merged `error_bound` absorbs both inputs' bounds so
/// that dropped and doubly-untracked items stay covered:
/// `f_i ≤ f̂_i ≤ f_i + error` holds over the concatenated stream.
///
/// # Panics
///
/// Panics if the capacities differ.
impl MergeableSummary for SpaceSaving {
    fn merge(mut self, other: Self) -> Self {
        assert_eq!(
            self.capacity, other.capacity,
            "merging SpaceSaving summaries requires equal capacities"
        );
        let err_a = self.error_bound();
        let err_b = other.error_bound();
        // Upper estimate and guaranteed lower bound per item in the union.
        let mut combined: Vec<(Item, u64, u64)> = Vec::new();
        for (&item, &(count, over)) in &self.counters {
            let (other_count, other_lower) = match other.counters.get(&item) {
                Some(&(c, o)) => (c, c - o),
                None => (err_b, 0),
            };
            combined.push((item, count + other_count, (count - over) + other_lower));
        }
        for (&item, &(count, over)) in &other.counters {
            if !self.counters.contains_key(&item) {
                combined.push((item, err_a + count, count - over));
            }
        }
        // Keep the `capacity` largest upper estimates (ties by smaller id).
        combined.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        combined.truncate(self.capacity);
        self.counters = combined
            .iter()
            .map(|&(item, upper, lower)| (item, (upper, upper - lower)))
            .collect();
        self.buckets = BTreeMap::new();
        for &(item, upper, _) in &combined {
            self.buckets.entry(upper).or_default().insert(item);
        }
        self.processed += other.processed;
        // After the merge the per-item error can reach err_a + err_b (one
        // side's mass hidden behind its bound), and dropped items are below
        // the (capacity+1)-th largest upper estimate ≤ m/(capacity+1) +
        // err_a + err_b. Folding both bounds into the slack keeps
        // `error_bound` certain, for this state and for all later updates.
        self.merge_slack = err_a + err_b;
        self
    }
}

/// Wire format: capacity, processed, merge slack, then the counters as
/// `(item, count, overestimate)` triples sorted by item. The count-bucket
/// eviction index mirrors the counters exactly, so it is rebuilt on
/// restore rather than shipped.
impl Snapshot for SpaceSaving {
    const TAG: u16 = codec::tag::SPACE_SAVING;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_usize(self.capacity);
        w.put_u64(self.processed);
        w.put_u64(self.merge_slack);
        let mut triples: Vec<(Item, u64, u64)> = self
            .counters
            .iter()
            .map(|(&i, &(c, over))| (i, c, over))
            .collect();
        triples.sort_unstable_by_key(|&(i, _, _)| i);
        w.put_len(triples.len());
        for (item, count, over) in triples {
            w.put_u64(item);
            w.put_u64(count);
            w.put_u64(over);
        }
    }
}

impl Restore for SpaceSaving {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(CodecError::InvalidValue {
                what: "SpaceSaving capacity must be positive",
            });
        }
        let processed = r.get_u64()?;
        let merge_slack = r.get_u64()?;
        let len = r.get_len(24)?;
        if len > capacity {
            return Err(CodecError::InvalidValue {
                what: "SpaceSaving holds more counters than its capacity",
            });
        }
        // Pre-size from the validated counter count, not the untrusted
        // `capacity` field (legal state, but must not drive an allocation).
        let mut counters = HashMap::with_capacity(len + 1);
        let mut buckets: BTreeMap<u64, BTreeSet<Item>> = BTreeMap::new();
        let mut prev: Option<Item> = None;
        for _ in 0..len {
            let item = r.get_u64()?;
            if prev.is_some_and(|p| p >= item) {
                return Err(CodecError::InvalidValue {
                    what: "SpaceSaving counters not strictly ascending by item",
                });
            }
            prev = Some(item);
            let count = r.get_u64()?;
            let over = r.get_u64()?;
            if count == 0 {
                return Err(CodecError::InvalidValue {
                    what: "SpaceSaving counters must be positive",
                });
            }
            // A counter is admitted with count = over + 1 and only grows, so
            // over < count whenever the item is tracked.
            if over >= count {
                return Err(CodecError::InvalidValue {
                    what: "SpaceSaving overestimate must be below the count",
                });
            }
            counters.insert(item, (count, over));
            buckets.entry(count).or_default().insert(item);
        }
        Ok(Self {
            capacity,
            counters,
            buckets,
            processed,
            merge_slack,
        })
    }
}

impl SpaceUsage for SpaceSaving {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + hashmap_bytes(&self.counters)
            // The bucket index stores each tracked item once plus one map
            // node per distinct count value.
            + self.counters.len() * std::mem::size_of::<Item>()
            + self.buckets.len() * std::mem::size_of::<(u64, BTreeSet<Item>)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::FrequencyVector;

    fn check_invariant(stream: &[Item], capacity: usize) {
        let mut ss = SpaceSaving::new(capacity);
        for &x in stream {
            ss.update(x);
        }
        let truth = FrequencyVector::from_stream(stream);
        let err = ss.error_bound();
        for (item, freq) in truth.iter() {
            let est = ss.estimate(item);
            assert!(
                est >= freq as u64 || est >= err,
                "estimate must overestimate"
            );
            assert!(est <= freq as u64 + err, "estimate exceeds error bound");
        }
        assert!(ss.max_frequency_upper_bound() >= truth.l_inf());
    }

    #[test]
    fn invariants_on_skewed_stream() {
        let mut stream = Vec::new();
        for i in 0..150u64 {
            for _ in 0..(150 - i) {
                stream.push(i);
            }
        }
        check_invariant(&stream, 10);
        check_invariant(&stream, 64);
    }

    #[test]
    fn invariants_on_cyclic_stream() {
        let stream: Vec<Item> = (0..6_000u64).map(|i| i % 300).collect();
        check_invariant(&stream, 16);
    }

    #[test]
    fn max_bound_is_tight_for_single_heavy_item() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..1000 {
            ss.update(3);
        }
        assert_eq!(ss.max_frequency_upper_bound(), 1000);
        assert_eq!(ss.estimate(3), 1000);
    }

    #[test]
    fn heavy_hitters_lower_bounds_are_sound() {
        let mut stream = Vec::new();
        for i in 0..3_000u64 {
            stream.push(i % 200);
            if i % 2 == 0 {
                stream.push(9999);
            }
        }
        let mut ss = SpaceSaving::new(32);
        for &x in &stream {
            ss.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        for (item, lower) in ss.heavy_hitters() {
            assert!(
                lower <= truth.get(item) as u64,
                "guaranteed count must be a lower bound"
            );
        }
    }

    /// Regression for the floor/ceiling error bound: with `processed = 10,
    /// capacity = 3` the documented `⌈m/k⌉` contract says 4, while the
    /// historical `processed / capacity` rounded the real-valued `m/k =
    /// 3.33…` guarantee down to 3. The reported bound must not undercut
    /// the real-valued guarantee it documents.
    #[test]
    fn error_bound_rounds_up_at_non_divisible_m_k() {
        let mut ss = SpaceSaving::new(3);
        for i in 0..10u64 {
            ss.update(i % 5);
        }
        assert_eq!(ss.processed(), 10);
        assert!(
            ss.error_bound() as f64 >= 10.0 / 3.0,
            "integer bound {} under-reports the m/k = {} guarantee",
            ss.error_bound(),
            10.0 / 3.0
        );
        assert_eq!(ss.error_bound(), 4, "⌈10/3⌉ = 4");
    }

    /// The count-bucket eviction must pick exactly the victim the
    /// historical full-scan implementation picked (minimum count, ties by
    /// smallest item), pinning every estimate byte for byte. The reference
    /// below *is* that historical implementation.
    #[test]
    fn bucketed_eviction_matches_full_scan_reference() {
        struct Reference {
            capacity: usize,
            counters: HashMap<Item, (u64, u64)>,
        }
        impl Reference {
            fn update(&mut self, item: Item) {
                if let Some((c, _)) = self.counters.get_mut(&item) {
                    *c += 1;
                    return;
                }
                if self.counters.len() < self.capacity {
                    self.counters.insert(item, (1, 0));
                    return;
                }
                let (&min_item, &(min_count, _)) = self
                    .counters
                    .iter()
                    .min_by_key(|&(item, &(c, _))| (c, *item))
                    .expect("non-empty");
                self.counters.remove(&min_item);
                self.counters.insert(item, (min_count + 1, min_count));
            }
        }
        // A saturating stream with heavy churn: cyclic over 10x capacity
        // with a skewed overlay, so evictions fire constantly and tie-break
        // order matters.
        let stream: Vec<Item> = (0..20_000u64)
            .map(|i| if i % 3 == 0 { i % 7 } else { i % 170 })
            .collect();
        for capacity in [1usize, 4, 17] {
            let mut ss = SpaceSaving::new(capacity);
            let mut reference = Reference {
                capacity,
                counters: HashMap::new(),
            };
            for &x in &stream {
                ss.update(x);
                reference.update(x);
            }
            let mut expected: Vec<(Item, (u64, u64))> = reference.counters.into_iter().collect();
            let mut actual: Vec<(Item, (u64, u64))> = ss.counters.clone().into_iter().collect();
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(actual, expected, "capacity {capacity}");
        }
    }

    /// Merged summaries keep the two-sided guarantee over the concatenated
    /// stream: overestimates only, within the merged error bound.
    #[test]
    fn merge_preserves_guarantees_over_concatenated_stream() {
        let stream_a: Vec<Item> = (0..2_000u64).map(|i| i % 90).collect();
        let stream_b: Vec<Item> = (0..1_500u64)
            .map(|i| if i % 2 == 0 { i % 40 } else { 200 + i % 60 })
            .collect();
        let mut a = SpaceSaving::new(24);
        for &x in &stream_a {
            a.update(x);
        }
        let mut b = SpaceSaving::new(24);
        for &x in &stream_b {
            b.update(x);
        }
        let merged = MergeableSummary::merge(a, b);
        let concat: Vec<Item> = stream_a.iter().chain(&stream_b).copied().collect();
        let truth = FrequencyVector::from_stream(&concat);
        assert_eq!(merged.processed(), concat.len() as u64);
        let err = merged.error_bound();
        for (item, freq) in truth.iter() {
            let est = merged.estimate(item);
            assert!(
                est >= freq as u64 || est >= err,
                "merged estimate must overestimate item {item}"
            );
            assert!(
                est <= freq as u64 + err,
                "merged estimate for {item} exceeds the merged error bound"
            );
        }
        assert!(merged.max_frequency_upper_bound() >= truth.l_inf());
        for (item, lower) in merged.heavy_hitters() {
            assert!(lower <= truth.get(item) as u64);
        }
    }

    /// Regression for the quadratic eviction path: a saturated stream over
    /// a large counter budget (every update past the fill evicts) must run
    /// in near-linear time. The historical full-scan eviction made this
    /// workload `evictions × capacity` tuple comparisons — tens of seconds
    /// in a release build, minutes in debug — while the bucket index does
    /// it in well under a second; the 10-second ceiling leaves an order of
    /// magnitude of headroom on the passing side only.
    #[test]
    fn saturated_eviction_is_subquadratic() {
        let capacity = 200_000usize;
        let mut ss = SpaceSaving::new(capacity);
        let start = std::time::Instant::now();
        // Fill the table, then 50k distinct new items, each an eviction.
        for item in 0..(capacity as u64 + 50_000) {
            ss.update(item);
        }
        assert_eq!(ss.processed(), capacity as u64 + 50_000);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "saturated ingest took {:?}: eviction has gone quadratic again",
            start.elapsed()
        );
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_capacity_panics() {
        let _ = SpaceSaving::new(0);
    }
}
