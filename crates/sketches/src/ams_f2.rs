//! AMS "tug-of-war" `F_2` estimator (Alon–Matias–Szegedy).
//!
//! Maintains `rows × cols` counters `Σ_i s_{r,c}(i)·f_i` with 4-wise
//! independent signs; each squared counter is an unbiased estimate of `F_2`
//! and a median of means gives a `(1 ± ε)` approximation. The sliding-window
//! `L_2` machinery uses this inside the smooth-histogram framework.

use tps_random::{KWiseHash, StreamRng};
use tps_streams::space::vec_bytes;
use tps_streams::{Estimator, Item, SpaceUsage};

/// An AMS `F_2` estimator with median-of-means aggregation.
#[derive(Debug, Clone)]
pub struct AmsF2 {
    rows: usize,
    cols: usize,
    counters: Vec<i64>,
    signs: Vec<KWiseHash>,
}

impl AmsF2 {
    /// Creates an estimator with `rows` independent groups ("medians") of
    /// `cols` counters each ("means").
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: StreamRng>(rng: &mut R, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "AMS dimensions must be positive");
        let signs = (0..rows * cols).map(|_| KWiseHash::new(rng, 4)).collect();
        Self {
            rows,
            cols,
            counters: vec![0; rows * cols],
            signs,
        }
    }

    /// Creates an estimator targeting relative error `ε` with constant
    /// failure probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 1`.
    pub fn with_accuracy<R: StreamRng>(rng: &mut R, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let cols = (8.0 / (epsilon * epsilon)).ceil() as usize;
        Self::new(rng, 5, cols)
    }

    /// Processes a signed update.
    pub fn update_signed(&mut self, item: Item, delta: i64) {
        for (idx, h) in self.signs.iter().enumerate() {
            self.counters[idx] += h.sign(item) * delta;
        }
    }

    /// Current `F_2` estimate (median over rows of the mean of squared
    /// counters within the row).
    pub fn f2_estimate(&self) -> f64 {
        let mut row_means: Vec<f64> = (0..self.rows)
            .map(|r| {
                let start = r * self.cols;
                let sum: f64 = self.counters[start..start + self.cols]
                    .iter()
                    .map(|&c| (c as f64) * (c as f64))
                    .sum();
                sum / self.cols as f64
            })
            .collect();
        row_means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        row_means[self.rows / 2]
    }
}

impl Estimator for AmsF2 {
    fn update(&mut self, item: Item) {
        self.update_signed(item, 1);
    }

    fn estimate(&self) -> f64 {
        self.f2_estimate()
    }
}

impl SpaceUsage for AmsF2 {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_bytes(&self.counters)
            + self.signs.len() * std::mem::size_of::<KWiseHash>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;
    use tps_streams::frequency::FrequencyVector;

    #[test]
    fn estimates_f2_within_relative_error() {
        let mut rng = default_rng(1);
        let mut ams = AmsF2::with_accuracy(&mut rng, 0.2);
        let stream: Vec<Item> = (0..30_000u64).map(|i| i % 100).collect();
        for &x in &stream {
            Estimator::update(&mut ams, x);
        }
        let truth = FrequencyVector::from_stream(&stream).fp(2.0);
        let est = ams.f2_estimate();
        assert!(
            (est / truth - 1.0).abs() < 0.3,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn estimates_skewed_f2() {
        let mut rng = default_rng(2);
        let mut ams = AmsF2::new(&mut rng, 7, 400);
        let mut stream = Vec::new();
        stream.extend(std::iter::repeat_n(1u64, 5_000));
        for i in 0..5_000u64 {
            stream.push(100 + i % 1000);
        }
        for &x in &stream {
            Estimator::update(&mut ams, x);
        }
        let truth = FrequencyVector::from_stream(&stream).fp(2.0);
        let est = ams.f2_estimate();
        assert!(
            (est / truth - 1.0).abs() < 0.3,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn signed_updates_cancel() {
        let mut rng = default_rng(3);
        let mut ams = AmsF2::new(&mut rng, 3, 64);
        ams.update_signed(7, 100);
        ams.update_signed(7, -100);
        assert_eq!(ams.f2_estimate(), 0.0);
    }

    #[test]
    fn empty_stream_estimate_is_zero() {
        let mut rng = default_rng(4);
        let ams = AmsF2::new(&mut rng, 3, 8);
        assert_eq!(ams.f2_estimate(), 0.0);
    }
}
