//! # tps-sketches
//!
//! Deterministic and randomized stream summaries used as substrates by the
//! truly perfect samplers and by the baseline (non-truly-perfect) samplers
//! they are compared against.
//!
//! The deterministic structures matter most: the paper's `L_p` samplers for
//! `p ∈ [1, 2]` obtain their rejection normaliser from a **deterministic**
//! Misra–Gries bound on `‖f‖_∞` (Theorem 3.2 / 3.4) precisely because any
//! randomized estimate that can fail — however rarely — would re-introduce
//! additive error and the sampler would no longer be *truly* perfect.
//!
//! | module | structure | used by |
//! |---|---|---|
//! | [`misra_gries`] | Misra–Gries heavy hitters (deterministic) | `L_p` sampler normaliser, fast `p<1` baseline |
//! | [`space_saving`] | SpaceSaving (deterministic) | ablation alternative to Misra–Gries |
//! | [`count_min`] | CountMin sketch (randomized, overestimates) | ablation: why a randomized normaliser breaks truly-perfectness |
//! | [`count_sketch`] | CountSketch (randomized, unbiased) | baseline heavy-hitter recovery |
//! | [`ams_f2`] | AMS tug-of-war `F_2` estimator | sliding-window `L_2` estimation substrate |
//! | [`fp_estimate`] | AMS sampling-based `F_p` estimator | smooth-histogram `L_p` estimation |
//! | [`sparse_recovery`] | Reed–Solomon syndrome `k`-sparse recovery (deterministic under the sparsity promise) | strict-turnstile `F_0` sampler (Theorem D.3) |
//! | [`exact_counter`] | exact hash-map counter | ground truth, offsets table |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ams_f2;
pub mod count_min;
pub mod count_sketch;
pub mod exact_counter;
pub mod fp_estimate;
pub mod misra_gries;
pub mod space_saving;
pub mod sparse_recovery;

pub use ams_f2::AmsF2;
pub use count_min::CountMin;
pub use count_sketch::CountSketch;
pub use exact_counter::ExactCounter;
pub use fp_estimate::AmsFpEstimator;
pub use misra_gries::MisraGries;
pub use space_saving::SpaceSaving;
pub use sparse_recovery::SparseRecovery;
