//! Exact frequency counting.
//!
//! Two uses: (a) ground truth for small experiments, and (b) the shared
//! "hash table containing a count and a list of offsets" that gives the
//! truly perfect sampler framework its `O(1)` expected update time
//! (the optimisation described after Theorem 3.1): each *distinct* sampled
//! item is counted once, and every sampler instance that later samples the
//! same item only stores the counter value at its own sampling time as an
//! offset.

use std::collections::HashMap;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::hashmap_bytes;
use tps_streams::{Estimator, FastHashMap, Item, SpaceUsage};

/// An exact hash-map frequency counter.
#[derive(Debug, Clone, Default)]
pub struct ExactCounter {
    counts: HashMap<Item, u64>,
    processed: u64,
}

impl ExactCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one unit insertion.
    pub fn update(&mut self, item: Item) {
        self.processed += 1;
        *self.counts.entry(item).or_insert(0) += 1;
    }

    /// The exact frequency of an item.
    pub fn count(&self, item: Item) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Number of updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of distinct items seen.
    pub fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }

    /// The exact maximum frequency.
    pub fn max_frequency(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }
}

impl Estimator for ExactCounter {
    fn update(&mut self, item: Item) {
        ExactCounter::update(self, item);
    }

    fn estimate(&self) -> f64 {
        self.processed as f64
    }
}

impl SpaceUsage for ExactCounter {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + hashmap_bytes(&self.counts)
    }
}

/// The shared suffix-count table used for `O(1)`-update-time truly perfect
/// sampling.
///
/// When a sampler instance samples item `s` at time `t`, it registers
/// interest by recording the *current* suffix count of `s` as an offset; a
/// single shared counter per distinct tracked item is incremented on every
/// subsequent occurrence. The instance's own suffix count is then
/// `shared_count − offset`, reconstructed at query time. This way a stream
/// update touches exactly one hash-table entry no matter how many instances
/// track the item.
#[derive(Debug, Clone, Default)]
pub struct SuffixCountTable {
    /// Occurrences of each tracked item since it was first tracked. Keyed
    /// with the fast internal hasher: this map is touched once per stream
    /// update and dominates the engine's per-update cost.
    counts: FastHashMap<Item, u64>,
}

impl SuffixCountTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts tracking `item` (idempotent) and returns the offset an
    /// instance must remember to reconstruct its own suffix count later.
    ///
    /// The offset convention: the occurrence that caused the instance to
    /// sample the item is *not* counted in its suffix, matching Algorithm 1
    /// (the counter is reset to zero when the reservoir admits an item and
    /// only later occurrences increment it).
    pub fn track(&mut self, item: Item) -> u64 {
        *self.counts.entry(item).or_insert(0)
    }

    /// Processes one stream update: increments the shared counter if the
    /// item is tracked by anyone. `O(1)` expected time.
    pub fn update(&mut self, item: Item) {
        if let Some(c) = self.counts.get_mut(&item) {
            *c += 1;
        }
    }

    /// Processes a contiguous batch of stream updates, leaving the table in
    /// exactly the state the per-item loop would.
    ///
    /// Runs of equal adjacent items are folded into one hash-table touch, so
    /// heavy skewed streams cost one lookup per *run* rather than per
    /// occurrence; an empty table short-circuits the whole batch.
    pub fn update_batch(&mut self, items: &[Item]) {
        if self.counts.is_empty() {
            return;
        }
        tps_streams::for_each_run(items, |item, count| self.update_run(item, count));
    }

    /// Processes `count` consecutive occurrences of `item` with a single
    /// hash-table touch (exactly equivalent to `count` [`Self::update`]
    /// calls, since the counter is plain addition).
    #[inline]
    pub fn update_run(&mut self, item: Item, count: u64) {
        if let Some(c) = self.counts.get_mut(&item) {
            *c += count;
        }
    }

    /// Reconstructs an instance's suffix count from its stored offset.
    ///
    /// Returns 0 if the item is not tracked (can only happen for instances
    /// that never sampled anything).
    pub fn suffix_count(&self, item: Item, offset: u64) -> u64 {
        self.counts
            .get(&item)
            .map(|&c| c.saturating_sub(offset))
            .unwrap_or(0)
    }

    /// Stops tracking an item and frees its counter. Callers are responsible
    /// for only doing this once no instance still references the item.
    pub fn untrack(&mut self, item: Item) {
        self.counts.remove(&item);
    }

    /// Number of distinct tracked items.
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    /// The tracked `(item, shared count)` entries, in no particular order
    /// (used by snapshot validation and diagnostics).
    pub fn entries(&self) -> impl Iterator<Item = (Item, u64)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }
}

impl SpaceUsage for SuffixCountTable {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + hashmap_bytes(&self.counts)
    }
}

/// Wire format: the tracked `(item, shared count)` pairs, sorted by item.
impl Snapshot for SuffixCountTable {
    const TAG: u16 = codec::tag::SUFFIX_COUNT_TABLE;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        codec::put_sorted_u64_pairs(w, self.counts.iter().map(|(&i, &c)| (i, c)));
    }
}

impl Restore for SuffixCountTable {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let counts = codec::get_sorted_u64_pairs(r)?.into_iter().collect();
        Ok(Self { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counter_counts() {
        let mut c = ExactCounter::new();
        for x in [1u64, 2, 2, 3, 3, 3] {
            c.update(x);
        }
        assert_eq!(c.count(1), 1);
        assert_eq!(c.count(3), 3);
        assert_eq!(c.count(9), 0);
        assert_eq!(c.processed(), 6);
        assert_eq!(c.distinct(), 3);
        assert_eq!(c.max_frequency(), 3);
    }

    #[test]
    fn suffix_table_reconstructs_counts() {
        let mut table = SuffixCountTable::new();
        // Instance A samples item 5 at time t0.
        let offset_a = table.track(5);
        assert_eq!(offset_a, 0);
        // Three later occurrences of 5 and some noise.
        table.update(5);
        table.update(9);
        table.update(5);
        // Instance B samples item 5 now: its offset captures the 2 counted so far.
        let offset_b = table.track(5);
        assert_eq!(offset_b, 2);
        table.update(5);
        assert_eq!(table.suffix_count(5, offset_a), 3);
        assert_eq!(table.suffix_count(5, offset_b), 1);
        assert_eq!(
            table.suffix_count(9, 0),
            0,
            "untracked items have no suffix count"
        );
        assert_eq!(table.tracked(), 1);
    }

    #[test]
    fn suffix_table_matches_per_instance_counting() {
        // Shared-table reconstruction must agree with naive per-instance
        // counters for an arbitrary interleaving.
        let stream = [3u64, 3, 7, 3, 7, 7, 3, 9, 3];
        let sample_times = [(0usize, 3u64), (2, 7), (5, 7), (6, 3)];
        let mut table = SuffixCountTable::new();
        let mut offsets = Vec::new();
        let mut naive = vec![0u64; sample_times.len()];
        for (t, &item) in stream.iter().enumerate() {
            // Instances sample *at* their designated time, then the update
            // is processed (the sampled occurrence itself is not counted).
            for (k, &(st, sitem)) in sample_times.iter().enumerate() {
                if st == t {
                    assert_eq!(sitem, item);
                    offsets.push((k, sitem, table.track(sitem)));
                }
            }
            table.update(item);
            for (k, &(st, sitem)) in sample_times.iter().enumerate() {
                if t > st && sitem == item {
                    naive[k] += 1;
                }
            }
        }
        for &(k, item, offset) in &offsets {
            // The tracked count includes the sampled occurrence itself (it was
            // updated right after track), so subtract one to match Algorithm 1.
            let reconstructed = table.suffix_count(item, offset).saturating_sub(1);
            assert_eq!(reconstructed, naive[k], "instance {k}");
        }
    }

    #[test]
    fn estimator_trait_reports_stream_length() {
        let mut c = ExactCounter::new();
        Estimator::update(&mut c, 4);
        Estimator::update(&mut c, 4);
        assert_eq!(Estimator::estimate(&c), 2.0);
    }
}
