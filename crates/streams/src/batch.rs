//! Shared primitives for the batched-update engine.
//!
//! Every amortised `update_batch` override in the workspace reduces to one
//! of two traversals of the incoming slice, collected here so the
//! batch ≡ loop law has a single implementation to audit:
//!
//! * [`for_each_run`] — run-length compression for order-*sensitive*
//!   consumers (Misra–Gries, the shared suffix-count table): only
//!   *contiguous* runs of one item may be folded, because interleavings
//!   across different items are not commutative for those structures.
//! * [`count_multiplicities`] / [`aggregate_in_order`] — full per-item
//!   aggregation for order-*insensitive* (additive) consumers (CountMin,
//!   CountSketch) and for consumers whose decisions depend only on
//!   first-occurrence order and multiplicity (the `F_0` sampler).

use crate::fasthash::FastHashMap;
use crate::update::Item;

/// Calls `f(item, count)` once per maximal run of equal adjacent items,
/// in order. `Σ count` over all calls equals `items.len()`.
#[inline]
pub fn for_each_run(items: &[Item], mut f: impl FnMut(Item, u64)) {
    let mut rest = items;
    while let Some(&head) = rest.first() {
        let len = run_len(rest, head);
        f(head, len as u64);
        rest = &rest[len..];
    }
}

/// Length of the maximal prefix of `items` equal to `head` (callers
/// guarantee `items[0] == head`). Short runs (the common case on
/// low-multiplicity streams) resolve with per-item compares; once a run
/// survives the first few lanes, the scan switches to a branchless 8-lane
/// block mode — one data-dependent branch per block, with the mismatch
/// lane recovered from a bitmask — so long runs cost `n/8` branches
/// instead of `n`.
#[inline]
fn run_len(items: &[Item], head: Item) -> usize {
    let n = items.len();
    let mut i = 1;
    let scalar_end = n.min(4);
    while i < scalar_end {
        if items[i] != head {
            return i;
        }
        i += 1;
    }
    while i + 8 <= n {
        let mut mismatch = 0usize;
        for lane in 0..8 {
            mismatch |= usize::from(items[i + lane] != head) << lane;
        }
        if mismatch != 0 {
            return i + mismatch.trailing_zeros() as usize;
        }
        i += 8;
    }
    while i < n && items[i] == head {
        i += 1;
    }
    i
}

/// Aggregates a batch to `item → multiplicity` (order discarded; valid only
/// for additive consumers).
pub fn count_multiplicities(items: &[Item]) -> FastHashMap<Item, u64> {
    let mut counts =
        FastHashMap::with_capacity_and_hasher(items.len().min(1024), Default::default());
    for &item in items {
        *counts.entry(item).or_insert(0u64) += 1;
    }
    counts
}

/// Aggregates a batch to `(first-occurrence order, item → multiplicity)` —
/// the traversal order per-item logic sees when every occurrence of an item
/// is folded into its first.
pub fn aggregate_in_order(items: &[Item]) -> (Vec<Item>, FastHashMap<Item, u64>) {
    let mut counts: FastHashMap<Item, u64> =
        FastHashMap::with_capacity_and_hasher(items.len().min(1024), Default::default());
    let mut order = Vec::new();
    for &item in items {
        let entry = counts.entry(item).or_insert(0);
        if *entry == 0 {
            order.push(item);
        }
        *entry += 1;
    }
    (order, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_cover_the_slice_in_order() {
        let items = [3u64, 3, 3, 7, 7, 3, 9];
        let mut seen = Vec::new();
        for_each_run(&items, |item, count| seen.push((item, count)));
        assert_eq!(seen, vec![(3, 3), (7, 2), (3, 1), (9, 1)]);
        assert_eq!(
            seen.iter().map(|&(_, c)| c).sum::<u64>(),
            items.len() as u64
        );
    }

    #[test]
    fn empty_slice_produces_no_runs() {
        let mut calls = 0;
        for_each_run(&[], |_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn multiplicities_and_order_agree() {
        let items = [5u64, 1, 5, 2, 1, 5];
        let counts = count_multiplicities(&items);
        let (order, ordered_counts) = aggregate_in_order(&items);
        assert_eq!(order, vec![5, 1, 2]);
        for (&item, &count) in &counts {
            assert_eq!(ordered_counts[&item], count);
        }
        assert_eq!(counts[&5], 3);
        assert_eq!(counts[&1], 2);
        assert_eq!(counts[&2], 1);
    }
}
