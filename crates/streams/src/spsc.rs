//! A bounded single-producer / single-consumer ring, hand-rolled on `std`
//! atomics — the ingest spine of the persistent sharded runtime
//! (`tps_core::runtime`).
//!
//! The workspace is offline, so this is deliberately a small, auditable
//! queue rather than a vendored dependency:
//!
//! * **Lock-free fast path.** One cache-padded head (consumer) and tail
//!   (producer) index over a fixed power-of-two slot array. `try_push` /
//!   `try_pop` are wait-free: one load of the opposite index, one slot
//!   move, one store of the own index.
//! * **Parking slow path.** Blocking [`Producer::push`] /
//!   [`Consumer::pop`] spin briefly, then park on a `Mutex`/`Condvar`
//!   pair. The runtime's host may have *fewer cores than shards* (CI
//!   runners routinely do), so unbounded spinning would starve the very
//!   worker the caller is waiting on. Wakeups cannot be lost: the parking
//!   side publishes its parked flag (SeqCst) *before* re-checking the
//!   queue, and the waking side publishes its index (SeqCst) *before*
//!   reading the flag — one of the two must observe the other.
//! * **Disconnect semantics.** Dropping either endpoint closes the
//!   channel: a closed-and-empty `pop` returns `None`, a closed `push`
//!   hands the value back.
//!
//! The indices are monotonically increasing `usize` values reduced by a
//! power-of-two mask; `tail - head` is the queue length (wrapping
//! subtraction keeps this correct across index overflow).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What the sharded runtime does when a shard's ingest ring is full.
///
/// This is a *policy* type (consumed by `tps_core::runtime`); it lives here
/// with the queue because the semantics are defined by what the queue can
/// and cannot promise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the caller until the worker drains a slot. Ingest throughput
    /// then tracks the slowest shard, but memory stays bounded by
    /// `capacity × chunk` per shard.
    #[default]
    Block,
    /// Never block: the caller keeps the chunk in a coordinator-side spill
    /// queue and retries on later calls (and drains it, blocking, before
    /// any barrier). Ingest calls stay non-blocking even while a worker is
    /// busy emitting a snapshot, at the cost of temporarily unbounded
    /// coordinator memory under sustained overload.
    Spill,
    /// Never block *and* never buffer: a chunk that finds its ring full is
    /// dropped on the floor (load shedding), counted in the runtime's
    /// stats. Both latency and memory stay bounded under overload; the
    /// price is that the sampler answers for the *admitted* sub-stream, so
    /// front-ends choosing this policy must watch the drop counters.
    Fail,
}

/// Error returned by [`Producer::try_push`], carrying the rejected value.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; retry after the consumer makes progress.
    Full(T),
    /// The consumer is gone; the value can never be delivered.
    Disconnected(T),
}

impl<T> PushError<T> {
    /// Recovers the value that could not be enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Disconnected(v) => v,
        }
    }
}

/// Error returned by [`Consumer::try_pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The ring is currently empty (the producer may still push).
    Empty,
    /// The ring is empty and the producer is gone: no value will ever
    /// arrive.
    Disconnected,
}

/// Pads the hot indices to their own cache lines so the producer's tail
/// stores never invalidate the consumer's head line and vice versa.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop; written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push; written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Set when either endpoint drops.
    closed: AtomicBool,
    /// Dekker flags for the parking protocol (see module docs).
    producer_parked: AtomicBool,
    consumer_parked: AtomicBool,
    lock: Mutex<()>,
    not_full: Condvar,
    not_empty: Condvar,
}

// The slots are only ever touched by exactly one side at a time (producer
// before the tail store publishes them, consumer after the head load claims
// them), so shipping the shared block across threads only needs `T: Send`.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone; whatever is still queued is dropped here.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut at = head;
        while at != tail {
            unsafe { (*self.buf[at & self.mask].get()).assume_init_drop() };
            at = at.wrapping_add(1);
        }
    }
}

/// The sending half of a bounded SPSC ring. `!Clone` — single producer.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded SPSC ring. `!Clone` — single consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// How many times the blocking paths re-try the fast path before parking.
/// Kept small: on an oversubscribed host the peer needs the core more than
/// we need the latency.
const SPIN_TRIES: u32 = 64;

/// Creates a bounded SPSC ring holding at most `capacity` values.
/// `capacity` is rounded up to a power of two (minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        producer_parked: AtomicBool::new(false),
        consumer_parked: AtomicBool::new(false),
        lock: Mutex::new(()),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T> Shared<T> {
    /// Wakes a parked consumer, if any. Called by the producer after its
    /// SeqCst tail store; taking the lock orders the notify after the
    /// consumer's park decision.
    fn wake_consumer(&self) {
        if self.consumer_parked.load(Ordering::SeqCst) {
            let _guard = self.lock.lock().unwrap();
            self.not_empty.notify_one();
        }
    }

    fn wake_producer(&self) {
        if self.producer_parked.load(Ordering::SeqCst) {
            let _guard = self.lock.lock().unwrap();
            self.not_full.notify_one();
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.lock.lock().unwrap();
        self.not_full.notify_one();
        self.not_empty.notify_one();
    }
}

impl<T> Producer<T> {
    /// Capacity of the ring (after power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Number of values currently queued (racy but monotone-consistent:
    /// only the consumer can shrink it concurrently).
    pub fn len(&self) -> usize {
        let shared = &self.shared;
        shared
            .tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(shared.head.0.load(Ordering::SeqCst))
    }

    /// Whether the ring is currently empty (from the producer's view).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring is currently full (from the producer's view).
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Whether the consumer has been dropped.
    pub fn is_disconnected(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }

    /// Non-blocking push. On success the value is visible to the consumer
    /// before the call returns.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let shared = &*self.shared;
        if shared.closed.load(Ordering::SeqCst) {
            return Err(PushError::Disconnected(value));
        }
        let tail = shared.tail.0.load(Ordering::Relaxed);
        let head = shared.head.0.load(Ordering::SeqCst);
        if tail.wrapping_sub(head) > shared.mask {
            return Err(PushError::Full(value));
        }
        unsafe { (*shared.buf[tail & shared.mask].get()).write(value) };
        // SeqCst publish: pairs with the consumer's Dekker flag read in the
        // parking protocol *and* releases the slot write.
        shared.tail.0.store(tail.wrapping_add(1), Ordering::SeqCst);
        shared.wake_consumer();
        Ok(())
    }

    /// Blocking push: parks until a slot frees up. Returns the value if the
    /// consumer disconnected before it could be delivered.
    pub fn push(&mut self, mut value: T) -> Result<(), T> {
        for _ in 0..SPIN_TRIES {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(v)) => return Err(v),
                Err(PushError::Full(v)) => value = v,
            }
            std::hint::spin_loop();
        }
        loop {
            {
                let shared = &*self.shared;
                let mut guard = shared.lock.lock().unwrap();
                loop {
                    shared.producer_parked.store(true, Ordering::SeqCst);
                    // Re-check *after* publishing the flag: either we see
                    // the consumer's progress here, or the consumer sees
                    // our flag and notifies under the lock.
                    let tail = shared.tail.0.load(Ordering::Relaxed);
                    let head = shared.head.0.load(Ordering::SeqCst);
                    let full = tail.wrapping_sub(head) > shared.mask;
                    if !full || shared.closed.load(Ordering::SeqCst) {
                        break;
                    }
                    guard = shared.not_full.wait(guard).unwrap();
                }
                shared.producer_parked.store(false, Ordering::SeqCst);
            }
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(v)) => return Err(v),
                Err(PushError::Full(v)) => value = v,
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring (after power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Number of values currently queued (racy but monotone-consistent:
    /// only the producer can grow it concurrently).
    pub fn len(&self) -> usize {
        let shared = &self.shared;
        shared
            .tail
            .0
            .load(Ordering::SeqCst)
            .wrapping_sub(shared.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring is currently empty (from the consumer's view).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer has been dropped.
    pub fn is_disconnected(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }

    /// Non-blocking pop.
    pub fn try_pop(&mut self) -> Result<T, PopError> {
        let shared = &*self.shared;
        let head = shared.head.0.load(Ordering::Relaxed);
        let tail = shared.tail.0.load(Ordering::SeqCst);
        if head == tail {
            return if shared.closed.load(Ordering::SeqCst) {
                Err(PopError::Disconnected)
            } else {
                Err(PopError::Empty)
            };
        }
        let value = unsafe { (*shared.buf[head & shared.mask].get()).assume_init_read() };
        shared.head.0.store(head.wrapping_add(1), Ordering::SeqCst);
        shared.wake_producer();
        Ok(value)
    }

    /// Blocking pop: parks until a value arrives. Returns `None` once the
    /// producer has disconnected *and* the ring is drained.
    pub fn pop(&mut self) -> Option<T> {
        for _ in 0..SPIN_TRIES {
            match self.try_pop() {
                Ok(v) => return Some(v),
                Err(PopError::Disconnected) => return None,
                Err(PopError::Empty) => std::hint::spin_loop(),
            }
        }
        loop {
            {
                let shared = &*self.shared;
                let mut guard = shared.lock.lock().unwrap();
                loop {
                    shared.consumer_parked.store(true, Ordering::SeqCst);
                    let head = shared.head.0.load(Ordering::Relaxed);
                    let tail = shared.tail.0.load(Ordering::SeqCst);
                    if head != tail || shared.closed.load(Ordering::SeqCst) {
                        break;
                    }
                    guard = shared.not_empty.wait(guard).unwrap();
                }
                shared.consumer_parked.store(false, Ordering::SeqCst);
            }
            match self.try_pop() {
                Ok(v) => return Some(v),
                Err(PopError::Disconnected) => return None,
                Err(PopError::Empty) => {}
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (mut tx, mut rx) = ring::<u64>(4);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert!(matches!(tx.try_push(99), Err(PushError::Full(99))));
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Ok(v));
        }
        assert_eq!(rx.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    /// Indices wrap around the mask many times; FIFO order and the
    /// full/empty distinction must survive every wrap.
    #[test]
    fn wrap_around_preserves_fifo_and_fullness() {
        let (mut tx, mut rx) = ring::<u64>(4);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // Drive the indices through > 8 full wraps with a sawtooth fill.
        for round in 0..40u64 {
            let fill = 1 + (round % 4) as usize;
            for _ in 0..fill {
                tx.try_push(next_in).unwrap();
                next_in += 1;
            }
            assert_eq!(tx.len(), fill);
            for _ in 0..fill {
                assert_eq!(rx.try_pop(), Ok(next_out));
                next_out += 1;
            }
            assert!(rx.is_empty());
        }
        // Fill to capacity exactly at a wrapped offset.
        for v in 0..4 {
            tx.try_push(1000 + v).unwrap();
        }
        assert!(tx.is_full());
        assert!(matches!(tx.try_push(0), Err(PushError::Full(0))));
    }

    #[test]
    fn dropping_producer_disconnects_after_drain() {
        let (mut tx, mut rx) = ring::<String>(4);
        tx.try_push("a".to_string()).unwrap();
        tx.try_push("b".to_string()).unwrap();
        drop(tx);
        assert_eq!(rx.pop().as_deref(), Some("a"));
        assert_eq!(rx.try_pop(), Ok("b".to_string()));
        assert_eq!(rx.try_pop(), Err(PopError::Disconnected));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_consumer_rejects_pushes_with_the_value() {
        let (mut tx, rx) = ring::<u32>(4);
        drop(rx);
        assert!(matches!(tx.try_push(7), Err(PushError::Disconnected(7))));
        assert_eq!(tx.push(9), Err(9));
    }

    #[test]
    fn queued_values_drop_when_both_ends_drop() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = ring::<Counted>(8);
        for _ in 0..5 {
            assert!(tx.try_push(Counted).is_ok());
        }
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    /// Cross-thread stress: a blocking producer pushes a long monotone
    /// sequence through a tiny ring while the consumer drains with a mix of
    /// blocking and non-blocking pops. Exercises the full/empty parking
    /// races from both sides.
    #[test]
    fn stress_blocking_producer_and_mixed_consumer() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(4);
        let producer = std::thread::spawn(move || {
            for v in 0..N {
                tx.push(v).unwrap();
            }
        });
        let mut expected = 0u64;
        while expected < N {
            // Alternate try_pop and pop so both the parked and spinning
            // consumer paths run.
            let got = if expected.is_multiple_of(3) {
                rx.pop()
            } else {
                match rx.try_pop() {
                    Ok(v) => Some(v),
                    Err(PopError::Empty) => continue,
                    Err(PopError::Disconnected) => None,
                }
            };
            assert_eq!(got, Some(expected));
            expected += 1;
        }
        producer.join().unwrap();
    }

    /// The reverse stress: fast producer bursts against a deliberately slow
    /// consumer, forcing the producer through its parking path.
    #[test]
    fn stress_parking_producer_under_slow_consumer() {
        const N: u64 = 20_000;
        let (mut tx, mut rx) = ring::<u64>(2);
        let consumer = std::thread::spawn(move || {
            let mut sum = 0u64;
            let mut ticks = 0u64;
            while let Some(v) = rx.pop() {
                sum += v;
                ticks += 1;
                if ticks.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
            sum
        });
        for v in 0..N {
            tx.push(v).unwrap();
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), N * (N - 1) / 2);
    }
}
