//! Exact frequency vectors and target sampling distributions.
//!
//! A truly perfect `G`-sampler must output index `i` with probability exactly
//! `G(f_i) / Σ_j G(f_j)`. Everything in the benchmark harness is compared
//! against the *exact* target distribution, which this module computes from a
//! fully materialised frequency vector (the ground truth the streaming
//! algorithms never get to see).

use crate::measure::MeasureFn;
use crate::update::{Item, SignedUpdate, Timestamp, WindowSpec};
use std::collections::HashMap;

/// A sparse, exact frequency vector over the universe `[n]` (only nonzero
/// coordinates are stored).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrequencyVector {
    counts: HashMap<Item, i64>,
}

impl FrequencyVector {
    /// Creates an empty (all-zero) frequency vector.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
        }
    }

    /// Builds the frequency vector of an insertion-only stream.
    pub fn from_stream(items: &[Item]) -> Self {
        let mut v = Self::new();
        for &item in items {
            v.insert(item);
        }
        v
    }

    /// Builds the frequency vector induced by the active window of an
    /// insertion-only stream: only the last `window.width` updates count.
    pub fn from_window(items: &[Item], window: WindowSpec) -> Self {
        let start = items.len().saturating_sub(window.width as usize);
        Self::from_stream(&items[start..])
    }

    /// Builds the frequency vector of a turnstile stream.
    pub fn from_signed_stream(updates: &[SignedUpdate]) -> Self {
        let mut v = Self::new();
        for u in updates {
            v.apply(*u);
        }
        v
    }

    /// Builds a frequency vector directly from `(item, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if an item appears twice.
    pub fn from_counts(pairs: &[(Item, i64)]) -> Self {
        let mut counts = HashMap::with_capacity(pairs.len());
        for &(item, count) in pairs {
            let prev = counts.insert(item, count);
            assert!(prev.is_none(), "item {item} listed twice");
        }
        let mut v = Self { counts };
        v.prune();
        v
    }

    /// Applies one unit insertion.
    pub fn insert(&mut self, item: Item) {
        *self.counts.entry(item).or_insert(0) += 1;
    }

    /// Applies one signed update.
    pub fn apply(&mut self, update: SignedUpdate) {
        let entry = self.counts.entry(update.item).or_insert(0);
        *entry += update.delta;
        if *entry == 0 {
            self.counts.remove(&update.item);
        }
    }

    /// Removes explicit zero entries (only needed after `from_counts`).
    fn prune(&mut self) {
        self.counts.retain(|_, &mut c| c != 0);
    }

    /// The frequency of a coordinate (zero if absent).
    pub fn get(&self, item: Item) -> i64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Whether every coordinate is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.is_empty()
    }

    /// Whether every coordinate is non-negative (the strict turnstile
    /// invariant).
    pub fn is_non_negative(&self) -> bool {
        self.counts.values().all(|&c| c >= 0)
    }

    /// Number of nonzero coordinates, `F_0`.
    pub fn f0(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Iterates over `(item, frequency)` pairs of nonzero coordinates.
    pub fn iter(&self) -> impl Iterator<Item = (Item, i64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// The support (nonzero coordinates), unsorted.
    pub fn support(&self) -> Vec<Item> {
        self.counts.keys().copied().collect()
    }

    /// Total mass `F_1 = Σ_i |f_i|` (equals the stream length for
    /// insertion-only streams).
    pub fn l1(&self) -> f64 {
        self.counts.values().map(|&c| c.unsigned_abs() as f64).sum()
    }

    /// The `p`-th frequency moment `F_p = Σ_i |f_i|^p`.
    pub fn fp(&self, p: f64) -> f64 {
        assert!(p > 0.0, "p must be positive");
        self.counts
            .values()
            .map(|&c| (c.unsigned_abs() as f64).powf(p))
            .sum()
    }

    /// `‖f‖_∞`, the largest absolute frequency.
    pub fn l_inf(&self) -> u64 {
        self.counts
            .values()
            .map(|&c| c.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// `F_G = Σ_i G(|f_i|)` for a measure function `G`.
    pub fn fg<G: MeasureFn>(&self, g: &G) -> f64 {
        self.counts
            .values()
            .map(|&c| g.value(c.unsigned_abs()))
            .sum()
    }

    /// The exact target distribution of a `G`-sampler: `(i, G(f_i)/F_G)` for
    /// each nonzero coordinate. Returns an empty map if `F_G = 0`.
    pub fn g_distribution<G: MeasureFn>(&self, g: &G) -> HashMap<Item, f64> {
        let total = self.fg(g);
        if total <= 0.0 {
            return HashMap::new();
        }
        self.counts
            .iter()
            .map(|(&i, &c)| (i, g.value(c.unsigned_abs()) / total))
            .filter(|&(_, p)| p > 0.0)
            .collect()
    }

    /// The exact target distribution of an `L_p` sampler:
    /// `(i, |f_i|^p / F_p)`.
    pub fn lp_distribution(&self, p: f64) -> HashMap<Item, f64> {
        let total = self.fp(p);
        if total <= 0.0 {
            return HashMap::new();
        }
        self.counts
            .iter()
            .map(|(&i, &c)| (i, (c.unsigned_abs() as f64).powf(p) / total))
            .collect()
    }

    /// The exact target distribution of an `F_0` sampler: uniform over the
    /// support.
    pub fn f0_distribution(&self) -> HashMap<Item, f64> {
        let f0 = self.f0();
        if f0 == 0 {
            return HashMap::new();
        }
        self.counts.keys().map(|&i| (i, 1.0 / f0 as f64)).collect()
    }
}

/// A materialised matrix of non-negative integer entries, used as ground
/// truth for the row samplers of Section 3.2.3.
#[derive(Debug, Clone, Default)]
pub struct MatrixAccumulator {
    rows: HashMap<u64, HashMap<u64, u64>>,
}

impl MatrixAccumulator {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one unit update to `(row, col)`.
    pub fn insert(&mut self, row: u64, col: u64) {
        *self.rows.entry(row).or_default().entry(col).or_insert(0) += 1;
    }

    /// The `L_1` norm of a row (sum of entries).
    pub fn row_l1(&self, row: u64) -> f64 {
        self.rows
            .get(&row)
            .map(|cols| cols.values().map(|&v| v as f64).sum())
            .unwrap_or(0.0)
    }

    /// The `L_2` norm of a row.
    pub fn row_l2(&self, row: u64) -> f64 {
        self.rows
            .get(&row)
            .map(|cols| {
                cols.values()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>()
                    .sqrt()
            })
            .unwrap_or(0.0)
    }

    /// The exact `L_{1,q}` row-sampling distribution: row `r` with
    /// probability `‖m_r‖_q / Σ_s ‖m_s‖_q`, for `q ∈ {1, 2}`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not 1 or 2.
    pub fn row_distribution(&self, q: u32) -> HashMap<u64, f64> {
        let norm = |row: &HashMap<u64, u64>| -> f64 {
            match q {
                1 => row.values().map(|&v| v as f64).sum(),
                2 => row
                    .values()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>()
                    .sqrt(),
                _ => panic!("only q = 1 or q = 2 row norms are supported"),
            }
        };
        let total: f64 = self.rows.values().map(norm).sum();
        if total <= 0.0 {
            return HashMap::new();
        }
        self.rows
            .iter()
            .map(|(&r, cols)| (r, norm(cols) / total))
            .collect()
    }

    /// Number of nonzero rows.
    pub fn nonzero_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Timestamped exact frequencies for sliding-window ground truth: records the
/// full stream and answers window queries exactly.
#[derive(Debug, Clone, Default)]
pub struct WindowedGroundTruth {
    items: Vec<Item>,
}

impl WindowedGroundTruth {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one update.
    pub fn push(&mut self, item: Item) {
        self.items.push(item);
    }

    /// Current stream length.
    pub fn len(&self) -> u64 {
        self.items.len() as u64
    }

    /// Whether no updates were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The exact frequency vector of the window ending at the current time.
    pub fn window_frequencies(&self, window: WindowSpec) -> FrequencyVector {
        FrequencyVector::from_window(&self.items, window)
    }

    /// The exact frequency vector of the window ending at an arbitrary past
    /// time `t` (1-based; `t = len()` is "now").
    pub fn window_frequencies_at(&self, window: WindowSpec, t: Timestamp) -> FrequencyVector {
        let t = (t as usize).min(self.items.len());
        let start = t.saturating_sub(window.width as usize);
        FrequencyVector::from_stream(&self.items[start..t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Lp;

    #[test]
    fn from_stream_counts_correctly() {
        let v = FrequencyVector::from_stream(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(v.get(1), 1);
        assert_eq!(v.get(2), 2);
        assert_eq!(v.get(3), 3);
        assert_eq!(v.get(4), 0);
        assert_eq!(v.f0(), 3);
        assert_eq!(v.l1(), 6.0);
        assert_eq!(v.l_inf(), 3);
    }

    #[test]
    fn signed_stream_cancels_to_zero() {
        let v = FrequencyVector::from_signed_stream(&[
            SignedUpdate::insert(5),
            SignedUpdate::insert(5),
            SignedUpdate::delete(5),
            SignedUpdate::delete(5),
        ]);
        assert!(v.is_zero());
        assert!(v.is_non_negative());
    }

    #[test]
    fn fp_moments() {
        let v = FrequencyVector::from_counts(&[(1, 1), (2, 2), (3, 3)]);
        assert!((v.fp(2.0) - 14.0).abs() < 1e-12);
        assert!((v.fp(1.0) - 6.0).abs() < 1e-12);
        let half = 1.0 + 2.0f64.sqrt() + 3.0f64.sqrt();
        assert!((v.fp(0.5) - half).abs() < 1e-12);
    }

    #[test]
    fn lp_distribution_sums_to_one() {
        let v = FrequencyVector::from_counts(&[(1, 1), (2, 2), (3, 3), (9, 10)]);
        for p in [0.5, 1.0, 1.5, 2.0] {
            let d = v.lp_distribution(p);
            let total: f64 = d.values().sum();
            assert!((total - 1.0).abs() < 1e-12, "p={p} total={total}");
        }
    }

    #[test]
    fn g_distribution_matches_lp_for_lp_measure() {
        let v = FrequencyVector::from_counts(&[(1, 1), (2, 4), (3, 9)]);
        let g = Lp::new(2.0);
        let a = v.g_distribution(&g);
        let b = v.lp_distribution(2.0);
        for (k, pv) in &a {
            assert!((pv - b[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn f0_distribution_is_uniform() {
        let v = FrequencyVector::from_counts(&[(1, 1), (2, 100), (3, 5)]);
        let d = v.f0_distribution();
        for p in d.values() {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_vector_distributions_are_empty() {
        let v = FrequencyVector::new();
        assert!(v.lp_distribution(1.0).is_empty());
        assert!(v.f0_distribution().is_empty());
        assert!(v.is_zero());
    }

    #[test]
    fn window_restriction() {
        let stream = [1u64, 1, 1, 2, 2, 3];
        let v = FrequencyVector::from_window(&stream, WindowSpec::new(3));
        assert_eq!(v.get(1), 0);
        assert_eq!(v.get(2), 2);
        assert_eq!(v.get(3), 1);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_counts_panic() {
        let _ = FrequencyVector::from_counts(&[(1, 1), (1, 2)]);
    }

    #[test]
    fn matrix_row_norms_and_distribution() {
        let mut m = MatrixAccumulator::new();
        // row 0: [3, 4] -> L1 = 7, L2 = 5; row 1: [1] -> L1 = L2 = 1.
        for _ in 0..3 {
            m.insert(0, 0);
        }
        for _ in 0..4 {
            m.insert(0, 1);
        }
        m.insert(1, 0);
        assert_eq!(m.row_l1(0), 7.0);
        assert_eq!(m.row_l2(0), 5.0);
        assert_eq!(m.row_l1(1), 1.0);
        let d1 = m.row_distribution(1);
        assert!((d1[&0] - 7.0 / 8.0).abs() < 1e-12);
        let d2 = m.row_distribution(2);
        assert!((d2[&0] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_ground_truth_matches_direct_computation() {
        let mut gt = WindowedGroundTruth::new();
        let stream = [5u64, 6, 5, 7, 5, 6];
        for &x in &stream {
            gt.push(x);
        }
        let w = WindowSpec::new(4);
        let direct = FrequencyVector::from_window(&stream, w);
        assert_eq!(gt.window_frequencies(w), direct);
        let at3 = gt.window_frequencies_at(w, 3);
        assert_eq!(at3.get(5), 2);
        assert_eq!(at3.get(6), 1);
    }
}
