//! Mergeability contracts for samplers and summaries.
//!
//! The paper's samplers are one-pass and oblivious to how the stream is
//! partitioned, which makes them natural candidates for scatter-gather
//! sharding: split the stream across `k` independent instances, ingest the
//! shards in parallel, and answer queries from a *merged* instance. Two
//! different merge strengths appear in this workspace and the traits here
//! name them:
//!
//! * [`MergeableSummary`] — **exactly** mergeable: the merged summary's
//!   guarantees are those the summary would offer over the concatenated
//!   stream (for same-seed CountMin / CountSketch the merged *state* is
//!   byte-identical to sequential ingestion; for Misra–Gries / SpaceSaving
//!   the deterministic error bounds compose additively). Merging is pure
//!   counter arithmetic and consumes no randomness.
//! * [`MergeableSampler`] — **distributionally** mergeable: the merged
//!   sampler's output distribution equals the distribution a single
//!   instance would have had over the combined stream. Merging draws a
//!   random combined state (e.g. reservoir slots drawn from the two inputs
//!   weighted by how many updates each admitted), so it needs an RNG.
//!
//! ## Which partitionings are exact
//!
//! A merged timestamp-based sampler reconstructs suffix counts from its two
//! inputs, and an input can only count occurrences *it saw*. Consequently:
//!
//! * **Hash partitioning** (every occurrence of an item routed to the same
//!   shard) is distributionally exact for *every* measure `G`: each shard
//!   owns its items' full frequencies, so merged suffix counts are exact.
//! * **Round-robin / arbitrary partitioning** is exact for
//!   constant-increment measures (`L_1`: acceptance is independent of the
//!   suffix count) and an approximation otherwise, because occurrences of a
//!   slot's item that landed on *other* shards are missing from its suffix
//!   count.
//!
//! `ShardedSampler` in `tps-core` builds the scatter-gather front-end on
//! top of these traits.

use tps_random::StreamRng;

/// A sampler whose instances can be merged into one that answers for the
/// combined stream.
///
/// Implementations must document their merge semantics precisely; the
/// contract is *concatenation*: `a.merge(b, rng)` behaves as a sampler that
/// processed `a`'s stream followed by `b`'s. Under item-disjoint (hash)
/// partitioning this makes `k`-shard ingest + merge distributionally
/// equivalent to sequential ingest of the interleaved stream
/// (`tests/properties.rs` enforces this merge law).
///
/// Deliberately *not* a subtrait of [`StreamSampler`]: mergeability is
/// about combining states, not about which update type fed them, so
/// insertion-only and turnstile samplers implement the same trait. Code
/// that also needs to ingest bounds the ingest capability separately
/// (e.g. `MergeableSampler + UpdateSampler<U>`).
///
/// [`StreamSampler`]: crate::model::StreamSampler
pub trait MergeableSampler: Sized {
    /// Merges `other` into `self`, returning a sampler for the combined
    /// stream. `rng` supplies the coins of the randomized combined-state
    /// draw (implementations that need none ignore it).
    ///
    /// # Panics
    ///
    /// Implementations panic when the two instances are structurally
    /// incompatible (different instance counts, universes, exponents, …).
    fn merge(self, other: Self, rng: &mut dyn StreamRng) -> Self;

    /// Whether [`MergeableSampler::merge`] accepts these two instances —
    /// the non-panicking pre-check for the structural compatibility the
    /// merge otherwise asserts. Front-ends that accept *untrusted* state
    /// (snapshot restore) call this before ever merging, so a crafted input
    /// surfaces as a typed decode error instead of a query-time panic.
    /// Implementations must return `false` whenever `merge` would panic —
    /// deliberately a required method (not defaulted), so a new sampler
    /// family cannot silently opt out of the decode-time guard.
    fn merge_compatible(&self, other: &Self) -> bool;
}

/// A deterministic or randomized stream summary whose instances merge by
/// counter arithmetic, preserving the summary's guarantees over the
/// concatenated stream.
pub trait MergeableSummary: Sized {
    /// Merges `other` into `self`.
    ///
    /// # Panics
    ///
    /// Implementations panic when the two instances are structurally
    /// incompatible (different dimensions, capacities, or hash functions).
    fn merge(self, other: Self) -> Self;
}
