//! Statistics for validating sampler output distributions.
//!
//! A truly perfect sampler's conditional output distribution equals the
//! target exactly, so any statistical distance measured between an empirical
//! histogram of its samples and the target must be explained by sampling
//! noise alone. The experiments therefore report:
//!
//! * total-variation distance between the empirical distribution and the
//!   exact target, together with the *expected* TV distance of a perfect
//!   multinomial sample of the same size (so "indistinguishable from noise"
//!   is a quantitative statement), and
//! * Pearson χ² statistics with their degrees of freedom, and
//! * the composition bias of running many independent samplers on successive
//!   stream portions (the paper's motivating failure mode for γ > 0).

use crate::model::SampleOutcome;
use crate::update::Item;
use std::collections::HashMap;

/// An empirical histogram of sampler outcomes.
#[derive(Debug, Clone, Default)]
pub struct SampleHistogram {
    counts: HashMap<Item, u64>,
    fails: u64,
    empties: u64,
    total_draws: u64,
}

impl SampleHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sampler outcome.
    pub fn record(&mut self, outcome: SampleOutcome) {
        self.total_draws += 1;
        match outcome {
            SampleOutcome::Index(i) => *self.counts.entry(i).or_insert(0) += 1,
            SampleOutcome::Fail => self.fails += 1,
            SampleOutcome::Empty => self.empties += 1,
        }
    }

    /// Number of outcomes recorded (including failures).
    pub fn total_draws(&self) -> u64 {
        self.total_draws
    }

    /// Number of successful index outcomes.
    pub fn successes(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of `FAIL` outcomes.
    pub fn fails(&self) -> u64 {
        self.fails
    }

    /// Number of `⊥` outcomes.
    pub fn empties(&self) -> u64 {
        self.empties
    }

    /// Empirical failure rate.
    pub fn fail_rate(&self) -> f64 {
        if self.total_draws == 0 {
            0.0
        } else {
            self.fails as f64 / self.total_draws as f64
        }
    }

    /// The number of times a specific index was sampled.
    pub fn count(&self, item: Item) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// The empirical conditional distribution over indices (conditioned on a
    /// successful outcome).
    pub fn empirical_distribution(&self) -> HashMap<Item, f64> {
        let succ = self.successes();
        if succ == 0 {
            return HashMap::new();
        }
        self.counts
            .iter()
            .map(|(&i, &c)| (i, c as f64 / succ as f64))
            .collect()
    }

    /// Total-variation distance between the empirical conditional
    /// distribution and a target distribution.
    pub fn tv_distance(&self, target: &HashMap<Item, f64>) -> f64 {
        tv_distance(&self.empirical_distribution(), target)
    }

    /// Pearson χ² statistic of the successful samples against a target
    /// distribution, together with the degrees of freedom.
    ///
    /// Buckets with expected count below 1 are merged into a single "rare"
    /// bucket to keep the statistic well behaved.
    pub fn chi_square(&self, target: &HashMap<Item, f64>) -> ChiSquare {
        let n = self.successes() as f64;
        if n == 0.0 || target.is_empty() {
            return ChiSquare {
                statistic: 0.0,
                degrees_of_freedom: 0,
            };
        }
        let mut statistic = 0.0;
        let mut rare_expected = 0.0;
        let mut rare_observed = 0.0;
        let mut cells = 0usize;
        for (&item, &prob) in target {
            let expected = prob * n;
            let observed = self.count(item) as f64;
            if expected < 1.0 {
                rare_expected += expected;
                rare_observed += observed;
            } else {
                statistic += (observed - expected).powi(2) / expected;
                cells += 1;
            }
        }
        if rare_expected > 0.0 {
            statistic += (rare_observed - rare_expected).powi(2) / rare_expected;
            cells += 1;
        }
        ChiSquare {
            statistic,
            degrees_of_freedom: cells.saturating_sub(1),
        }
    }
}

/// A χ² statistic with its degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The Pearson χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (number of cells minus one).
    pub degrees_of_freedom: usize,
}

impl ChiSquare {
    /// A crude acceptance test: the statistic of a correct sampler
    /// concentrates around its degrees of freedom with standard deviation
    /// `√(2·dof)`; this accepts anything within `sigmas` standard deviations
    /// above the mean.
    ///
    /// This is intentionally loose — it is a regression tripwire for grossly
    /// wrong distributions, not a calibrated hypothesis test.
    pub fn within_sigmas(&self, sigmas: f64) -> bool {
        let dof = self.degrees_of_freedom as f64;
        if dof == 0.0 {
            return true;
        }
        self.statistic <= dof + sigmas * (2.0 * dof).sqrt()
    }
}

/// Total-variation distance between two distributions given as maps.
/// Missing keys are treated as zero mass.
pub fn tv_distance(a: &HashMap<Item, f64>, b: &HashMap<Item, f64>) -> f64 {
    let mut keys: Vec<Item> = a.keys().chain(b.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    0.5 * keys
        .iter()
        .map(|k| (a.get(k).copied().unwrap_or(0.0) - b.get(k).copied().unwrap_or(0.0)).abs())
        .sum::<f64>()
}

/// The expected total-variation distance between the empirical distribution
/// of `samples` i.i.d. draws from `target` and `target` itself, approximated
/// by the standard `Σ_i √(p_i(1-p_i)) / √(2π·samples)`-style bound
/// `E[TV] ≈ Σ_i √(p_i (1 - p_i) / (2 π samples))`.
///
/// Used to decide whether a measured TV distance is explained by sampling
/// noise: a truly perfect sampler's TV distance should be within a small
/// constant factor of this quantity, while a biased sampler's TV distance
/// plateaus at its bias.
pub fn expected_sampling_tv(target: &HashMap<Item, f64>, samples: u64) -> f64 {
    if samples == 0 {
        return 1.0;
    }
    let s = samples as f64;
    target
        .values()
        .map(|&p| (p * (1.0 - p) / (2.0 * std::f64::consts::PI * s)).sqrt())
        .sum()
}

/// Measures how the bias of repeated sampling *composes* across independent
/// runs: given per-run empirical distributions and the common target, returns
/// the total-variation distance between the product (joint) empirical
/// distribution and the product target, approximated through the standard
/// additive bound `TV(⊗P_i, ⊗Q_i) ≤ Σ_i TV(P_i, Q_i)` (reported as the sum).
///
/// For a truly perfect sampler each term is pure sampling noise and the sum
/// grows like `√(portions)·noise`; for a sampler with additive error γ the
/// sum grows like `portions · γ`, which is the accumulation phenomenon the
/// paper's introduction warns about.
pub fn composed_bias(per_run_tv: &[f64]) -> f64 {
    per_run_tv.iter().sum()
}

/// Scaling-exponent estimation by least squares on log-log data: fits
/// `y ≈ c · x^e` and returns `e`.
///
/// The experiment harness uses this to verify claims of the form "space grows
/// like n^{1 - 1/p}".
pub fn fit_power_law(points: &[(f64, f64)]) -> f64 {
    let filtered: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, y)| x > 0.0 && y > 0.0)
        .collect();
    assert!(
        filtered.len() >= 2,
        "need at least two positive points to fit"
    );
    let n = filtered.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in filtered {
        let lx = x.ln();
        let ly = y.ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_of(pairs: &[(Item, f64)]) -> HashMap<Item, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn tv_distance_basic_properties() {
        let a = target_of(&[(1, 0.5), (2, 0.5)]);
        let b = target_of(&[(1, 0.5), (2, 0.5)]);
        let c = target_of(&[(3, 1.0)]);
        assert_eq!(tv_distance(&a, &b), 0.0);
        assert!((tv_distance(&a, &c) - 1.0).abs() < 1e-12);
        let d = target_of(&[(1, 1.0)]);
        assert!((tv_distance(&a, &d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_records_all_outcome_kinds() {
        let mut h = SampleHistogram::new();
        h.record(SampleOutcome::Index(4));
        h.record(SampleOutcome::Index(4));
        h.record(SampleOutcome::Index(5));
        h.record(SampleOutcome::Fail);
        h.record(SampleOutcome::Empty);
        assert_eq!(h.total_draws(), 5);
        assert_eq!(h.successes(), 3);
        assert_eq!(h.fails(), 1);
        assert_eq!(h.empties(), 1);
        assert_eq!(h.count(4), 2);
        assert!((h.fail_rate() - 0.2).abs() < 1e-12);
        let emp = h.empirical_distribution();
        assert!((emp[&4] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_accepts_exact_multinomial() {
        // Draw from the exact target using a simple inverse-CDF and verify
        // the chi-square statistic is near its degrees of freedom.
        let target = target_of(&[(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)]);
        let mut h = SampleHistogram::new();
        let mut rng = tps_random::default_rng(42);
        use tps_random::StreamRng;
        for _ in 0..50_000 {
            let u = rng.next_f64();
            let idx = if u < 0.1 {
                0
            } else if u < 0.3 {
                1
            } else if u < 0.6 {
                2
            } else {
                3
            };
            h.record(SampleOutcome::Index(idx));
        }
        let cs = h.chi_square(&target);
        assert_eq!(cs.degrees_of_freedom, 3);
        assert!(cs.within_sigmas(4.0), "chi2 = {}", cs.statistic);
        assert!(h.tv_distance(&target) < 0.02);
    }

    #[test]
    fn chi_square_rejects_biased_sampler() {
        let target = target_of(&[(0, 0.5), (1, 0.5)]);
        let mut h = SampleHistogram::new();
        // A sampler that outputs 0 with probability 0.6.
        let mut rng = tps_random::default_rng(7);
        use tps_random::StreamRng;
        for _ in 0..50_000 {
            let idx = if rng.gen_bool(0.6) { 0 } else { 1 };
            h.record(SampleOutcome::Index(idx));
        }
        let cs = h.chi_square(&target);
        assert!(
            !cs.within_sigmas(6.0),
            "bias should be detected, chi2={}",
            cs.statistic
        );
    }

    #[test]
    fn expected_sampling_tv_shrinks_with_samples() {
        let target = target_of(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]);
        let small = expected_sampling_tv(&target, 100);
        let large = expected_sampling_tv(&target, 10_000);
        assert!(large < small);
        assert!(
            (small / large - 10.0).abs() < 0.5,
            "should shrink like 1/sqrt(samples)"
        );
    }

    #[test]
    fn fit_power_law_recovers_exponent() {
        let points: Vec<(f64, f64)> = (1..=8)
            .map(|i| (2f64.powi(i), 3.0 * 2f64.powi(i).powf(0.5)))
            .collect();
        let e = fit_power_law(&points);
        assert!((e - 0.5).abs() < 1e-9, "exponent {e}");
    }

    #[test]
    fn composed_bias_is_additive() {
        assert!((composed_bias(&[0.1, 0.2, 0.3]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = SampleHistogram::new();
        assert_eq!(h.fail_rate(), 0.0);
        assert!(h.empirical_distribution().is_empty());
        let cs = h.chi_square(&target_of(&[(0, 1.0)]));
        assert_eq!(cs.degrees_of_freedom, 0);
    }
}
