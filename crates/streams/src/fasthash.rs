//! A fast non-cryptographic hasher for the engine's internal maps.
//!
//! The hot path of every sampler is one or two hash-map touches per stream
//! update (the shared suffix-count table, the Misra–Gries counters), and
//! `std`'s default SipHash costs more than the rest of the update combined.
//! Keys in those maps are attacker-independent `u64` coordinates already
//! drawn from the stream, so a multiply–xor mixer (the finalizer of
//! splitmix64, which passes avalanche tests) is sufficient and several
//! times faster.
//!
//! Only *internal* bookkeeping maps use this hasher; nothing about the
//! samplers' distributional guarantees depends on its quality, and the
//! structures remain correct (just slower-in-the-worst-case) under
//! adversarial keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `u64`-oriented multiply–xor hasher (splitmix64 finalizer).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for non-u64 keys: fold 8-byte words.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        let mut z = self.state ^ i;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }
}

/// The `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.get(&10_001), None);
    }

    #[test]
    fn hasher_avalanches_low_bits() {
        // Consecutive keys must not collide in the low bits the table uses.
        use std::hash::BuildHasher;
        let build = FastBuildHasher::default();
        let mut low_bits: Vec<u64> = (0..1024u64)
            .map(|i| {
                let mut h = build.build_hasher();
                h.write_u64(i);
                h.finish() & 0xFFF
            })
            .collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(
            low_bits.len() > 700,
            "too many low-bit collisions: {}",
            low_bits.len()
        );
    }
}
