//! The coordinator↔worker control protocol of the cross-process ingest
//! service (`tps-service`).
//!
//! The persistent runtime in `tps_core::runtime` moves chunks and barrier
//! commands over in-memory SPSC rings; this module is the same command
//! vocabulary flattened onto a byte stream, so the "shard worker" can live
//! in a different *process* (talking over its stdin/stdout pipes) while the
//! coordinator keeps the exact epoch/barrier discipline: ship every staged
//! chunk, then a [`WireMessage::Barrier`] to every worker, then collect the
//! in-band [`WireMessage::BarrierAck`]s — acks arriving after all prior
//! chunks is what makes the per-worker states a consistent cut.
//!
//! ## Framing
//!
//! Every message is a `u32` little-endian length prefix followed by a
//! standard sealed envelope (tag [`tag::WIRE_MESSAGE`]) whose payload is
//! the message body. Reusing the snapshot envelope buys the protocol the
//! codec's hardening for free: magic/version/tag checks, a declared length
//! cross-checked against the bytes received, and an FNV checksum over the
//! whole frame — a desynchronized or corrupted pipe fails as a typed
//! [`CodecError`] instead of misparsing. The length prefix is capped at
//! [`MAX_MESSAGE_LEN`] *before* any allocation.
//!
//! ## Conversation shape
//!
//! ```text
//! worker → coordinator   Hello { shard, resume_epoch }      (once, on start)
//! coordinator → worker   Ingest { items } ...               (routed chunks)
//! coordinator → worker   Barrier { epoch, kind }
//! worker → coordinator   BarrierAck { shard, epoch, snapshot? }
//! coordinator → worker   Shutdown                           (clean exit)
//! ```
//!
//! A `Checkpoint` barrier makes the worker append an incremental frame
//! ([`crate::codec::delta`]) to its on-disk chain before acking (the ack is
//! the coordinator's signal that the chunks before the barrier are durable,
//! so its replay buffer can shrink); a `Query` barrier returns the worker's
//! full sealed snapshot in the ack, for restore-and-merge at the
//! coordinator. `Hello::resume_epoch` reports the checkpoint epoch a
//! restarted worker recovered to (`0` = fresh start), which tells the
//! coordinator exactly which buffered chunks to re-send.

use std::io::{self, Read, Write};

use crate::codec::{seal, tag, unseal, CodecError, SnapshotReader, SnapshotWriter};
use crate::update::{Item, SignedUpdate, StreamUpdate};

/// Hard cap on a single wire message (prefix-declared), validated before
/// any allocation.
///
/// The largest legitimate message is a `Query` barrier ack carrying one
/// shard's full sealed snapshot, so this cap is also the service's
/// **per-shard state ceiling**: a shard whose snapshot outgrows it fails
/// [`write_message`] with a typed error (aborting the job) rather than
/// desynchronising the pipe. The paper's samplers keep polylogarithmic
/// state, so real shards sit orders of magnitude below 64 MiB; a
/// deployment that ever approaches the cap should raise the job's shard
/// count — per-shard state shrinks with the number of shards. See the
/// "Limits" note in `crates/README.md`'s service section.
pub const MAX_MESSAGE_LEN: u32 = 64 << 20;

/// What a [`WireMessage::Barrier`] asks the worker to do once every chunk
/// before it has been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Append an incremental checkpoint frame to the worker's on-disk
    /// chain, then ack (no snapshot in the ack).
    Checkpoint,
    /// Ack with the worker's full sealed snapshot (consistent-cut query).
    Query,
}

/// One control message of the coordinator↔worker protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// Worker → coordinator, once on startup: which shard this process
    /// serves and the checkpoint epoch it recovered to (`0` = no
    /// checkpoint found, fresh state).
    Hello {
        /// The shard index this worker owns.
        shard: u64,
        /// The checkpoint epoch restored from disk; `0` means fresh.
        resume_epoch: u64,
    },
    /// Coordinator → worker: one routed chunk of stream items, to be
    /// applied in arrival order.
    Ingest {
        /// The items of the chunk.
        items: Vec<Item>,
    },
    /// Coordinator → worker: one routed chunk of signed turnstile updates,
    /// to be applied in arrival order (the turnstile kinds' counterpart of
    /// [`WireMessage::Ingest`]).
    IngestSigned {
        /// The signed updates of the chunk.
        updates: Vec<SignedUpdate>,
    },
    /// Coordinator → worker: a consistency barrier. Everything sent before
    /// it must be applied before the worker acts and acks.
    Barrier {
        /// The barrier epoch (strictly increasing per worker).
        epoch: u64,
        /// What the worker does at the barrier.
        kind: BarrierKind,
    },
    /// Worker → coordinator: the barrier at `epoch` has been executed.
    BarrierAck {
        /// The acking worker's shard index.
        shard: u64,
        /// The epoch being acknowledged.
        epoch: u64,
        /// The worker's full sealed snapshot, for `Query` barriers.
        snapshot: Option<Vec<u8>>,
    },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
}

const KIND_HELLO: u8 = 0;
const KIND_INGEST: u8 = 1;
const KIND_BARRIER: u8 = 2;
const KIND_BARRIER_ACK: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;
const KIND_INGEST_SIGNED: u8 = 5;

/// An update type the service can ship in an ingest message: the wire-level
/// face of the sampler-family layer.
///
/// The coordinator and worker loops are written once over
/// [`StreamUpdate`]; this trait supplies the only two kind-specific moves
/// they need — wrapping a routed chunk into the right ingest variant and
/// recognising that variant on arrival. Bare [`Item`]s travel as
/// [`WireMessage::Ingest`], [`SignedUpdate`]s as
/// [`WireMessage::IngestSigned`].
pub trait IngestPayload: StreamUpdate {
    /// Wraps a routed chunk into this update type's ingest message.
    fn into_ingest(chunk: Vec<Self>) -> WireMessage;

    /// Extracts the chunk if `msg` is this update type's ingest message;
    /// hands the message back otherwise so the caller can dispatch it.
    fn from_ingest(msg: WireMessage) -> Result<Vec<Self>, WireMessage>;
}

impl IngestPayload for Item {
    fn into_ingest(chunk: Vec<Self>) -> WireMessage {
        WireMessage::Ingest { items: chunk }
    }

    fn from_ingest(msg: WireMessage) -> Result<Vec<Self>, WireMessage> {
        match msg {
            WireMessage::Ingest { items } => Ok(items),
            other => Err(other),
        }
    }
}

impl IngestPayload for SignedUpdate {
    fn into_ingest(chunk: Vec<Self>) -> WireMessage {
        WireMessage::IngestSigned { updates: chunk }
    }

    fn from_ingest(msg: WireMessage) -> Result<Vec<Self>, WireMessage> {
        match msg {
            WireMessage::IngestSigned { updates } => Ok(updates),
            other => Err(other),
        }
    }
}

/// Why reading a message off a byte stream failed: transport trouble or a
/// frame that arrived intact but does not decode.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader/writer failed (including unexpected EOF
    /// mid-frame).
    Io(io::Error),
    /// The frame bytes arrived but are not a valid message.
    Codec(CodecError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire transport error: {e}"),
            WireError::Codec(e) => write!(f, "wire frame error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Encodes a message as its sealed frame (without the length prefix).
pub fn encode_message(msg: &WireMessage) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::WIRE_MESSAGE);
    match msg {
        WireMessage::Hello {
            shard,
            resume_epoch,
        } => {
            w.put_u8(KIND_HELLO);
            w.put_u64(*shard);
            w.put_u64(*resume_epoch);
        }
        WireMessage::Ingest { items } => {
            w.put_u8(KIND_INGEST);
            w.put_len(items.len());
            for &item in items {
                w.put_u64(item);
            }
        }
        WireMessage::IngestSigned { updates } => {
            w.put_u8(KIND_INGEST_SIGNED);
            w.put_len(updates.len());
            for &SignedUpdate { item, delta } in updates {
                w.put_u64(item);
                // Two's-complement cast: the full i64 range round-trips.
                w.put_u64(delta as u64);
            }
        }
        WireMessage::Barrier { epoch, kind } => {
            w.put_u8(KIND_BARRIER);
            w.put_u64(*epoch);
            w.put_u8(match kind {
                BarrierKind::Checkpoint => 0,
                BarrierKind::Query => 1,
            });
        }
        WireMessage::BarrierAck {
            shard,
            epoch,
            snapshot,
        } => {
            w.put_u8(KIND_BARRIER_ACK);
            w.put_u64(*shard);
            w.put_u64(*epoch);
            match snapshot {
                None => w.put_u8(0),
                Some(bytes) => {
                    w.put_u8(1);
                    w.put_len(bytes.len());
                    let mut payload = w.into_bytes();
                    payload.extend_from_slice(bytes);
                    return seal(tag::WIRE_MESSAGE, &payload);
                }
            }
        }
        WireMessage::Shutdown => {
            w.put_u8(KIND_SHUTDOWN);
        }
    }
    seal(tag::WIRE_MESSAGE, &w.into_bytes())
}

/// Decodes a sealed frame (without the length prefix) back into a message.
pub fn decode_message(frame: &[u8]) -> Result<WireMessage, CodecError> {
    let payload = unseal(tag::WIRE_MESSAGE, frame)?;
    let mut r = SnapshotReader::new(payload);
    r.expect_tag(tag::WIRE_MESSAGE)?;
    let msg = match r.get_u8()? {
        KIND_HELLO => WireMessage::Hello {
            shard: r.get_u64()?,
            resume_epoch: r.get_u64()?,
        },
        KIND_INGEST => {
            let len = r.get_len(8)?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(r.get_u64()?);
            }
            WireMessage::Ingest { items }
        }
        KIND_INGEST_SIGNED => {
            let len = r.get_len(16)?;
            let mut updates = Vec::with_capacity(len);
            for _ in 0..len {
                let item = r.get_u64()?;
                let delta = r.get_u64()? as i64;
                updates.push(SignedUpdate { item, delta });
            }
            WireMessage::IngestSigned { updates }
        }
        KIND_BARRIER => {
            let epoch = r.get_u64()?;
            let kind = match r.get_u8()? {
                0 => BarrierKind::Checkpoint,
                1 => BarrierKind::Query,
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "barrier kind must be 0 (checkpoint) or 1 (query)",
                    })
                }
            };
            WireMessage::Barrier { epoch, kind }
        }
        KIND_BARRIER_ACK => {
            let shard = r.get_u64()?;
            let epoch = r.get_u64()?;
            let snapshot = match r.get_u8()? {
                0 => None,
                1 => {
                    let len = r.get_len(1)?;
                    Some(r.get_bytes(len)?)
                }
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "ack snapshot flag must be 0 or 1",
                    })
                }
            };
            WireMessage::BarrierAck {
                shard,
                epoch,
                snapshot,
            }
        }
        KIND_SHUTDOWN => WireMessage::Shutdown,
        _ => {
            return Err(CodecError::InvalidValue {
                what: "unknown wire message kind",
            })
        }
    };
    r.finish()?;
    Ok(msg)
}

/// Writes one length-prefixed message and flushes the writer (messages are
/// request/response turns; a buffered unflushed frame deadlocks the peer).
pub fn write_message<W: Write>(w: &mut W, msg: &WireMessage) -> io::Result<()> {
    let frame = encode_message(msg);
    let len = u32::try_from(frame.len())
        .ok()
        .filter(|&n| n <= MAX_MESSAGE_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "wire message of {} bytes exceeds MAX_MESSAGE_LEN ({MAX_MESSAGE_LEN}); \
                     for query acks this bounds one shard's snapshot — run the job with \
                     more shards to shrink per-shard state",
                    frame.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one length-prefixed message. Returns `Ok(None)` on a clean EOF
/// (the peer closed the stream *between* messages); EOF mid-frame is an
/// [`WireError::Io`] with [`io::ErrorKind::UnexpectedEof`]. The length
/// prefix is validated against [`MAX_MESSAGE_LEN`] before any allocation.
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<WireMessage>, WireError> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first read so EOF at a message boundary is `None` while
    // EOF inside the prefix is still an error.
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a wire length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_MESSAGE_LEN {
        return Err(WireError::Codec(CodecError::Truncated {
            needed: u64::from(len),
            remaining: u64::from(MAX_MESSAGE_LEN),
        }));
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame)?;
    Ok(Some(decode_message(&frame)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<WireMessage> {
        vec![
            WireMessage::Hello {
                shard: 3,
                resume_epoch: 17,
            },
            WireMessage::Ingest {
                items: (0..1000).collect(),
            },
            WireMessage::Ingest { items: vec![] },
            WireMessage::IngestSigned {
                updates: (0..500u64)
                    .map(|i| SignedUpdate {
                        item: i,
                        delta: if i % 3 == 0 { -(i as i64) } else { i as i64 },
                    })
                    .collect(),
            },
            WireMessage::IngestSigned { updates: vec![] },
            WireMessage::Barrier {
                epoch: 9,
                kind: BarrierKind::Checkpoint,
            },
            WireMessage::Barrier {
                epoch: 10,
                kind: BarrierKind::Query,
            },
            WireMessage::BarrierAck {
                shard: 1,
                epoch: 9,
                snapshot: None,
            },
            WireMessage::BarrierAck {
                shard: 0,
                epoch: 10,
                snapshot: Some(vec![0xAB; 257]),
            },
            WireMessage::Shutdown,
        ]
    }

    #[test]
    fn messages_round_trip_through_a_stream() {
        let mut pipe = Vec::new();
        for msg in all_messages() {
            write_message(&mut pipe, &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(pipe);
        for expected in all_messages() {
            let got = read_message(&mut cursor).unwrap().expect("message");
            assert_eq!(got, expected);
        }
        assert!(read_message(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncation_and_corruption_fail_typed() {
        let mut pipe = Vec::new();
        write_message(
            &mut pipe,
            &WireMessage::Ingest {
                items: vec![1, 2, 3],
            },
        )
        .unwrap();
        // EOF inside the prefix.
        let mut short = std::io::Cursor::new(&pipe[..2]);
        assert!(matches!(read_message(&mut short), Err(WireError::Io(_))));
        // EOF inside the frame.
        let mut cut = std::io::Cursor::new(&pipe[..pipe.len() - 3]);
        assert!(matches!(read_message(&mut cut), Err(WireError::Io(_))));
        // Any flipped frame bit is caught (checksum or structure).
        for pos in 4..pipe.len() {
            let mut corrupt = pipe.clone();
            corrupt[pos] ^= 0x04;
            let mut c = std::io::Cursor::new(corrupt);
            assert!(
                matches!(read_message(&mut c), Err(WireError::Codec(_))),
                "flip at {pos} went unnoticed"
            );
        }
    }

    #[test]
    fn oversized_prefix_fails_before_allocating() {
        let mut pipe = Vec::new();
        pipe.extend_from_slice(&u32::MAX.to_le_bytes());
        pipe.extend_from_slice(&[0; 64]);
        let mut c = std::io::Cursor::new(pipe);
        assert!(matches!(
            read_message(&mut c),
            Err(WireError::Codec(CodecError::Truncated { .. }))
        ));
    }

    #[test]
    fn ingest_length_is_validated_before_allocating() {
        // A validly-sealed Ingest claiming u64::MAX items must fail on the
        // length check, not attempt the allocation.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::WIRE_MESSAGE);
        w.put_u8(1); // KIND_INGEST
        w.put_u64(u64::MAX);
        let frame = seal(tag::WIRE_MESSAGE, &w.into_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn signed_ingest_length_is_validated_before_allocating() {
        // Same guard as the unsigned variant: a sealed IngestSigned frame
        // claiming u64::MAX updates fails the 16-bytes-per-update length
        // check instead of attempting the allocation.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::WIRE_MESSAGE);
        w.put_u8(5); // KIND_INGEST_SIGNED
        w.put_u64(u64::MAX);
        let frame = seal(tag::WIRE_MESSAGE, &w.into_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn signed_ingest_round_trips_extreme_deltas() {
        let updates = vec![
            SignedUpdate {
                item: u64::MAX,
                delta: i64::MIN,
            },
            SignedUpdate {
                item: 0,
                delta: i64::MAX,
            },
            SignedUpdate { item: 7, delta: -1 },
        ];
        let frame = encode_message(&WireMessage::IngestSigned {
            updates: updates.clone(),
        });
        assert_eq!(
            decode_message(&frame).unwrap(),
            WireMessage::IngestSigned { updates }
        );
    }

    #[test]
    fn ingest_payloads_wrap_and_unwrap_their_own_variant() {
        let items = vec![1u64, 2, 3];
        match <Item as IngestPayload>::from_ingest(Item::into_ingest(items.clone())) {
            Ok(got) => assert_eq!(got, items),
            Err(other) => panic!("item payload bounced: {other:?}"),
        }
        let updates = vec![SignedUpdate::insert(4), SignedUpdate::delete(4)];
        match <SignedUpdate as IngestPayload>::from_ingest(SignedUpdate::into_ingest(
            updates.clone(),
        )) {
            Ok(got) => assert_eq!(got, updates),
            Err(other) => panic!("signed payload bounced: {other:?}"),
        }
        // Cross-kind messages bounce back for the caller to dispatch.
        assert!(<Item as IngestPayload>::from_ingest(WireMessage::Shutdown).is_err());
        assert!(
            <SignedUpdate as IngestPayload>::from_ingest(WireMessage::Ingest { items: vec![] })
                .is_err()
        );
    }

    #[test]
    fn barrier_acks_embed_snapshots_exactly() {
        let snapshot = vec![7u8; 4096];
        let frame = encode_message(&WireMessage::BarrierAck {
            shard: 2,
            epoch: 5,
            snapshot: Some(snapshot.clone()),
        });
        match decode_message(&frame).unwrap() {
            WireMessage::BarrierAck {
                shard: 2,
                epoch: 5,
                snapshot: Some(bytes),
            } => assert_eq!(bytes, snapshot),
            other => panic!("decoded {other:?}"),
        }
    }
}
