//! Synthetic workload generators.
//!
//! The paper motivates truly perfect sampling with network-monitoring,
//! distributed-database and event-detection streams. Those traces are not
//! available, so the experiments use synthetic streams whose frequency
//! vectors are fully controlled — which is exactly what is needed, because
//! every claim under test is a statement about the sampler's output
//! distribution *relative to the exact frequency vector*.
//!
//! All generators are deterministic given a seed.

use crate::update::{Item, MatrixUpdate, SignedUpdate};
use tps_random::{subset::shuffle, StreamRng};

/// Generates a stream of `m` updates drawn i.i.d. uniformly from `[n]`.
pub fn uniform_stream<R: StreamRng>(rng: &mut R, n: u64, m: usize) -> Vec<Item> {
    assert!(n > 0, "universe must be non-empty");
    (0..m).map(|_| rng.gen_range(n)).collect()
}

/// Generates a stream of `m` updates drawn i.i.d. from a Zipf(α)
/// distribution over `[n]` (item `i` has probability ∝ `1/(i+1)^α`).
///
/// Zipfian streams are the standard stand-in for skewed network / text
/// workloads; they exercise the heavy-hitter-dominated regime in which the
/// `L_p` samplers for `p > 1` concentrate on few items.
pub fn zipfian_stream<R: StreamRng>(rng: &mut R, n: u64, m: usize, alpha: f64) -> Vec<Item> {
    assert!(n > 0, "universe must be non-empty");
    assert!(alpha >= 0.0, "zipf exponent must be non-negative");
    // Build the CDF once; n is at most a few million in the experiments.
    let mut cdf = Vec::with_capacity(n as usize);
    let mut total = 0.0f64;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(alpha);
        cdf.push(total);
    }
    (0..m)
        .map(|_| {
            let target = rng.next_f64() * total;
            // Binary search the CDF.
            match cdf.binary_search_by(|probe| probe.partial_cmp(&target).unwrap()) {
                Ok(idx) => idx as u64,
                Err(idx) => (idx as u64).min(n - 1),
            }
        })
        .collect()
}

/// Generates a stream where `heavy_count` designated items receive
/// `heavy_fraction` of the `m` updates and the rest are uniform over the
/// remaining universe.
pub fn heavy_hitter_stream<R: StreamRng>(
    rng: &mut R,
    n: u64,
    m: usize,
    heavy_count: u64,
    heavy_fraction: f64,
) -> Vec<Item> {
    assert!(
        heavy_count > 0 && heavy_count < n,
        "need 0 < heavy_count < n"
    );
    assert!(
        (0.0..=1.0).contains(&heavy_fraction),
        "heavy_fraction must be in [0,1]"
    );
    (0..m)
        .map(|_| {
            if rng.gen_bool(heavy_fraction) {
                rng.gen_range(heavy_count)
            } else {
                heavy_count + rng.gen_range(n - heavy_count)
            }
        })
        .collect()
}

/// Materialises an insertion-only stream realising an explicit frequency
/// vector, with all copies of each item adjacent ("sorted order").
pub fn stream_from_frequencies(frequencies: &[(Item, u64)]) -> Vec<Item> {
    let mut out = Vec::with_capacity(frequencies.iter().map(|&(_, c)| c as usize).sum());
    for &(item, count) in frequencies {
        out.extend(std::iter::repeat_n(item, count as usize));
    }
    out
}

/// Materialises a *random-order* stream realising an explicit frequency
/// vector: the multiset of updates is fixed, their arrival order is a
/// uniformly random permutation (the model of Theorems 1.6 / 1.7).
pub fn random_order_stream<R: StreamRng>(rng: &mut R, frequencies: &[(Item, u64)]) -> Vec<Item> {
    let mut out = stream_from_frequencies(frequencies);
    shuffle(rng, &mut out);
    out
}

/// Generates a drifting stream for sliding-window experiments: the active
/// item population shifts by `drift` universe positions every `phase_len`
/// updates, so the window's frequency vector keeps changing and expired items
/// must genuinely be forgotten.
pub fn drifting_stream<R: StreamRng>(
    rng: &mut R,
    n: u64,
    m: usize,
    phase_len: usize,
    active_width: u64,
    drift: u64,
) -> Vec<Item> {
    assert!(active_width > 0 && active_width <= n);
    assert!(phase_len > 0);
    let mut out = Vec::with_capacity(m);
    let mut offset = 0u64;
    for t in 0..m {
        if t > 0 && t % phase_len == 0 {
            offset = (offset + drift) % n;
        }
        let item = (offset + rng.gen_range(active_width)) % n;
        out.push(item);
    }
    out
}

/// Generates a strict-turnstile stream: insertions and deletions such that
/// every intermediate frequency is non-negative and a `target_fraction` of
/// the inserted mass survives to the end.
pub fn strict_turnstile_stream<R: StreamRng>(
    rng: &mut R,
    n: u64,
    m: usize,
    delete_fraction: f64,
) -> Vec<SignedUpdate> {
    assert!(
        (0.0..1.0).contains(&delete_fraction),
        "delete_fraction must be in [0,1)"
    );
    let mut live: Vec<Item> = Vec::new();
    let mut out = Vec::with_capacity(m);
    for _ in 0..m {
        let can_delete = !live.is_empty();
        if can_delete && rng.gen_bool(delete_fraction) {
            // Delete one unit of a uniformly chosen live insertion, keeping
            // every intermediate frequency non-negative by construction.
            let idx = rng.gen_index(live.len());
            let item = live.swap_remove(idx);
            out.push(SignedUpdate::delete(item));
        } else {
            let item = rng.gen_range(n);
            live.push(item);
            out.push(SignedUpdate::insert(item));
        }
    }
    out
}

/// Generates a stream of matrix updates with `n` rows and `d` columns where
/// row `r` receives a number of updates proportional to `r + 1` (so row
/// norms are known and distinct).
pub fn matrix_stream<R: StreamRng>(rng: &mut R, n: u64, d: u64, m: usize) -> Vec<MatrixUpdate> {
    assert!(n > 0 && d > 0);
    let total_weight: u64 = n * (n + 1) / 2;
    (0..m)
        .map(|_| {
            // Sample a row with probability proportional to row + 1.
            let target = rng.gen_range(total_weight) + 1;
            // Find the smallest r with (r+1)(r+2)/2 >= target.
            let mut lo = 0u64;
            let mut hi = n - 1;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if (mid + 1) * (mid + 2) / 2 >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            MatrixUpdate::new(lo, rng.gen_range(d))
        })
        .collect()
}

/// An instance of the two-party equality problem used by the Theorem 1.2
/// lower-bound experiment: Alice's bit-vector `x`, Bob's `y`, and whether
/// they are equal.
#[derive(Debug, Clone)]
pub struct EqualityInstance {
    /// Alice's input `x ∈ {0,1}^n`.
    pub x: Vec<bool>,
    /// Bob's input `y ∈ {0,1}^n`.
    pub y: Vec<bool>,
}

impl EqualityInstance {
    /// Whether `x = y`.
    pub fn equal(&self) -> bool {
        self.x == self.y
    }

    /// The turnstile stream Alice contributes: `+1` on every coordinate
    /// where `x_i = 1`.
    pub fn alice_stream(&self) -> Vec<SignedUpdate> {
        self.x
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| SignedUpdate::insert(i as Item))
            .collect()
    }

    /// The turnstile stream Bob appends: `-1` on every coordinate where
    /// `y_i = 1`, so the final frequency vector is `x - y`.
    pub fn bob_stream(&self) -> Vec<SignedUpdate> {
        self.y
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| SignedUpdate::delete(i as Item))
            .collect()
    }
}

/// Generates an equality instance of dimension `n`. With probability 1/2 the
/// two inputs are identical; otherwise they differ in `hamming` uniformly
/// chosen positions (at least one).
pub fn equality_instance<R: StreamRng>(rng: &mut R, n: usize, hamming: usize) -> EqualityInstance {
    assert!(n > 0);
    let x: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let mut y = x.clone();
    if rng.gen_bool(0.5) {
        let flips = hamming.clamp(1, n);
        let positions = tps_random::subset::sample_without_replacement(rng, n as u64, flips);
        for pos in positions {
            y[pos as usize] = !y[pos as usize];
        }
    }
    EqualityInstance { x, y }
}

/// Splits a stream into `portions` equal consecutive portions, modelling the
/// "reset the sampler every minute" usage pattern from the paper's
/// introduction (used by the composition experiments).
pub fn split_into_portions(items: &[Item], portions: usize) -> Vec<Vec<Item>> {
    assert!(portions > 0);
    let chunk = items.len().div_ceil(portions).max(1);
    items.chunks(chunk).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::FrequencyVector;
    use tps_random::default_rng;

    #[test]
    fn uniform_stream_covers_universe() {
        let mut rng = default_rng(1);
        let stream = uniform_stream(&mut rng, 16, 10_000);
        let v = FrequencyVector::from_stream(&stream);
        assert_eq!(v.f0(), 16);
        assert!(stream.iter().all(|&i| i < 16));
    }

    #[test]
    fn zipfian_stream_is_skewed() {
        let mut rng = default_rng(2);
        let stream = zipfian_stream(&mut rng, 1000, 50_000, 1.2);
        let v = FrequencyVector::from_stream(&stream);
        // Item 0 should dominate item 100 heavily under alpha = 1.2.
        assert!(
            v.get(0) > 10 * v.get(100).max(1),
            "f0={} f100={}",
            v.get(0),
            v.get(100)
        );
    }

    #[test]
    fn zipfian_alpha_zero_is_uniformish() {
        let mut rng = default_rng(3);
        let stream = zipfian_stream(&mut rng, 10, 50_000, 0.0);
        let v = FrequencyVector::from_stream(&stream);
        for i in 0..10 {
            let c = v.get(i) as f64;
            assert!((c / 5_000.0 - 1.0).abs() < 0.15, "item {i} count {c}");
        }
    }

    #[test]
    fn heavy_hitter_stream_concentrates_mass() {
        let mut rng = default_rng(4);
        let stream = heavy_hitter_stream(&mut rng, 1000, 20_000, 2, 0.8);
        let v = FrequencyVector::from_stream(&stream);
        let heavy_mass = v.get(0) + v.get(1);
        assert!((heavy_mass as f64) > 0.75 * 20_000.0);
    }

    #[test]
    fn stream_from_frequencies_roundtrips() {
        let freqs = [(3u64, 5u64), (9, 2), (11, 1)];
        let stream = stream_from_frequencies(&freqs);
        assert_eq!(stream.len(), 8);
        let v = FrequencyVector::from_stream(&stream);
        assert_eq!(v.get(3), 5);
        assert_eq!(v.get(9), 2);
        assert_eq!(v.get(11), 1);
    }

    #[test]
    fn random_order_stream_preserves_frequencies() {
        let mut rng = default_rng(5);
        let freqs = [(1u64, 10u64), (2, 20), (3, 30)];
        let stream = random_order_stream(&mut rng, &freqs);
        let v = FrequencyVector::from_stream(&stream);
        assert_eq!(v.get(1), 10);
        assert_eq!(v.get(2), 20);
        assert_eq!(v.get(3), 30);
        // The order should differ from the sorted materialisation.
        assert_ne!(stream, stream_from_frequencies(&freqs));
    }

    #[test]
    fn drifting_stream_changes_population() {
        let mut rng = default_rng(6);
        let stream = drifting_stream(&mut rng, 1000, 10_000, 1000, 10, 100);
        let early = FrequencyVector::from_stream(&stream[..1000]);
        let late = FrequencyVector::from_stream(&stream[9000..]);
        // Early and late phases should have (almost) disjoint supports.
        let early_support: std::collections::HashSet<_> = early.support().into_iter().collect();
        let overlap = late
            .support()
            .iter()
            .filter(|i| early_support.contains(i))
            .count();
        assert!(overlap < 3, "supports overlap too much: {overlap}");
    }

    #[test]
    fn strict_turnstile_stream_never_goes_negative() {
        let mut rng = default_rng(7);
        let updates = strict_turnstile_stream(&mut rng, 50, 5_000, 0.4);
        let mut v = FrequencyVector::new();
        for &u in &updates {
            v.apply(u);
            assert!(v.is_non_negative(), "intermediate vector went negative");
        }
        assert!(!v.is_zero());
    }

    #[test]
    fn matrix_stream_rows_are_weighted() {
        let mut rng = default_rng(8);
        let updates = matrix_stream(&mut rng, 4, 3, 40_000);
        let mut row_counts = [0u64; 4];
        for u in &updates {
            assert!(u.row < 4 && u.col < 3);
            row_counts[u.row as usize] += 1;
        }
        // Row 3 has weight 4, row 0 weight 1.
        assert!(row_counts[3] > 3 * row_counts[0] / 2);
    }

    #[test]
    fn equality_instance_streams_cancel_iff_equal() {
        let mut rng = default_rng(9);
        let mut saw_equal = false;
        let mut saw_unequal = false;
        for _ in 0..50 {
            let inst = equality_instance(&mut rng, 64, 3);
            let mut updates = inst.alice_stream();
            updates.extend(inst.bob_stream());
            let v = FrequencyVector::from_signed_stream(&updates);
            if inst.equal() {
                assert!(v.is_zero());
                saw_equal = true;
            } else {
                assert!(!v.is_zero());
                saw_unequal = true;
            }
        }
        assert!(saw_equal && saw_unequal);
    }

    #[test]
    fn split_into_portions_covers_stream() {
        let items: Vec<u64> = (0..103).collect();
        let portions = split_into_portions(&items, 10);
        assert_eq!(portions.iter().map(Vec::len).sum::<usize>(), 103);
        assert!(portions.len() >= 10);
    }
}
