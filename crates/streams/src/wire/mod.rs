//! The coordinator↔worker control protocol of the cross-process ingest
//! service (`tps-service`) — a **semi-public, versioned wire API**.
//!
//! The persistent runtime in `tps_core::runtime` moves chunks and barrier
//! commands over in-memory SPSC rings; this module is the same command
//! vocabulary flattened onto a byte stream, so the "shard worker" can live
//! in a different *process* — over its stdin/stdout pipes or a TCP socket
//! (see [`transport`]) — while the coordinator keeps the exact
//! epoch/barrier discipline: ship every staged chunk, then a
//! [`WireMessage::Barrier`] to every worker, then collect the in-band
//! [`WireMessage::BarrierAck`]s — acks arriving after all prior chunks is
//! what makes the per-worker states a consistent cut.
//!
//! ## Framing
//!
//! Every message is a `u32` little-endian length prefix followed by a
//! standard sealed envelope (tag [`tag::WIRE_MESSAGE`]) whose payload is
//! the message body. Reusing the snapshot envelope buys the protocol the
//! codec's hardening for free: magic/version/tag checks, a declared length
//! cross-checked against the bytes received, and an FNV checksum over the
//! whole frame — a desynchronized or corrupted pipe fails as a typed
//! [`CodecError`] instead of misparsing. The length prefix is capped at
//! [`MAX_MESSAGE_LEN`] *before* any allocation.
//!
//! ## Conversation shape
//!
//! ```text
//! worker → coordinator   Hello { protocol, capabilities, shard, resume_epoch }
//! coordinator → worker   Ingest { items } ...               (routed chunks)
//! coordinator → worker   Barrier { epoch, kind }
//! worker → coordinator   BarrierAck { shard, epoch, snapshot? }
//! coordinator → worker   Shutdown                           (clean exit)
//!
//! coordinator → client   Hello { protocol, capabilities, .. }   (query plane)
//! client → coordinator   Query { options }
//! coordinator → client   QueryReply { processed, merged_fnv, epoch, cut, cached, sample }
//!                        | QueryRejected { code, detail }
//! ```
//!
//! A `Checkpoint` barrier makes the worker append an incremental frame
//! ([`crate::codec::delta`]) to its on-disk chain before acking (the ack is
//! the coordinator's signal that the chunks before the barrier are durable,
//! so its replay buffer can shrink); a `Query` barrier returns the worker's
//! full sealed snapshot in the ack, for restore-and-merge at the
//! coordinator; a `CheckpointPublish` barrier does both — one barrier
//! round feeds the on-disk chain *and* the query plane's snapshot cache.
//! `Hello::resume_epoch` reports the checkpoint epoch a restarted worker
//! recovered to (`0` = fresh start), which tells the coordinator exactly
//! which buffered chunks to re-send.
//!
//! On the query plane the roles flip: the *server* leads with its `Hello`
//! (so a client can check the [`caps::CACHED_QUERY`] bit before asking
//! for a cached answer), the client sends one [`WireMessage::Query`]
//! carrying its typed [`QueryOptions`], and the server answers with a
//! [`WireMessage::QueryReply`] pinned to the cut that produced it — or a
//! typed [`WireMessage::QueryRejected`] when it cannot.
//!
//! ## Versioning and negotiation
//!
//! The protocol is versioned **independently of the snapshot format**:
//! [`WIRE_PROTOCOL_VERSION`] names the conversation shape above, while the
//! envelope's `FORMAT_VERSION` keeps covering payload encodings. A
//! worker's `Hello` leads with its protocol version and a capability
//! bitmap ([`caps`]); the `Hello` layout itself is **frozen across all
//! protocol versions** (version first, then capabilities, shard and
//! resume epoch, all fixed-width), so any future peer's `Hello` still
//! *decodes* and the coordinator can reject it with the typed
//! [`WireError::VersionMismatch`] / [`WireError::CapabilityMissing`]
//! (see [`check_hello`]) instead of a misparse deep inside a later frame.
//! Negotiation is one-way: the worker announces, the coordinator decides.

pub mod transport;

use std::io::{self, Read, Write};

use crate::codec::{seal, tag, unseal, CodecError, SnapshotReader, SnapshotWriter};
use crate::query::{QueryConsistency, QueryOptions};
use crate::update::{Item, SignedUpdate, StreamUpdate};

/// Version of the coordinator↔worker conversation this build speaks.
///
/// Bumped whenever a message kind is added, removed, or re-laid-out
/// (anything a same-version peer could misinterpret). The `Hello` layout
/// is exempt — it is frozen so that version mismatches are always
/// *detectable* (see the module docs).
///
/// v2 re-laid-out `Query`/`QueryReply` for the typed query surface
/// (consistency options in the request; epoch/cut/cached in the reply),
/// added `QueryRejected` and the `CheckpointPublish` barrier kind.
pub const WIRE_PROTOCOL_VERSION: u16 = 2;

/// Capability bits a worker announces in its [`WireMessage::Hello`].
///
/// The coordinator requires the bits the job actually needs (e.g.
/// [`caps::SIGNED_INGEST`] for turnstile jobs) and rejects the worker
/// with [`WireError::CapabilityMissing`] otherwise — a typed, immediate
/// failure at handshake instead of a decode error mid-job.
pub mod caps {
    /// The worker accepts [`super::WireMessage::IngestSigned`] frames
    /// (turnstile sampler kinds).
    pub const SIGNED_INGEST: u64 = 1 << 0;
    /// The worker serves `Query` barriers (consistent-cut snapshot acks),
    /// which the live query plane and the final merged query both need.
    pub const QUERY: u64 = 1 << 1;
    /// The query plane serves [`super::QueryConsistency::Cached`] queries
    /// from its published snapshot cache. Announced by the coordinator's
    /// server-side `Hello` on query-plane connections; a client asking
    /// for a cached answer checks this bit before sending its request.
    pub const CACHED_QUERY: u64 = 1 << 2;

    /// Every capability this build implements.
    pub const ALL: u64 = SIGNED_INGEST | QUERY | CACHED_QUERY;
}

/// Hard cap on a single wire message (prefix-declared), validated before
/// any allocation.
///
/// The largest legitimate message is a `Query` barrier ack carrying one
/// shard's full sealed snapshot, so this cap is also the service's
/// **per-shard state ceiling**: a shard whose snapshot outgrows it fails
/// [`write_message`] with a typed error (aborting the job) rather than
/// desynchronising the pipe. The paper's samplers keep polylogarithmic
/// state, so real shards sit orders of magnitude below 64 MiB; a
/// deployment that ever approaches the cap should raise the job's shard
/// count — per-shard state shrinks with the number of shards. See the
/// "Limits" note in `crates/README.md`'s service section.
pub const MAX_MESSAGE_LEN: u32 = 64 << 20;

/// What a [`WireMessage::Barrier`] asks the worker to do once every chunk
/// before it has been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Append an incremental checkpoint frame to the worker's on-disk
    /// chain, then ack (no snapshot in the ack).
    Checkpoint,
    /// Ack with the worker's full sealed snapshot (consistent-cut query).
    Query,
    /// Both at once: append the checkpoint frame *and* ack with the full
    /// sealed snapshot. Used when the query plane is live, so every
    /// checkpoint barrier also feeds the published snapshot cache in the
    /// same round.
    CheckpointPublish,
}

/// One control message of the coordinator↔worker protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// Worker → coordinator, once per connection: the worker's protocol
    /// version and capabilities, which shard this process serves, and the
    /// checkpoint epoch it recovered to (`0` = no checkpoint found, fresh
    /// state).
    ///
    /// The on-wire layout of this message is frozen across protocol
    /// versions (see the module docs) so a mismatched peer is rejected
    /// with a typed error, never a misparse.
    Hello {
        /// The wire protocol version the worker speaks
        /// ([`WIRE_PROTOCOL_VERSION`] for this build).
        protocol: u16,
        /// Capability bitmap ([`caps`]).
        capabilities: u64,
        /// The shard index this worker owns.
        shard: u64,
        /// The checkpoint epoch restored from disk; `0` means fresh.
        resume_epoch: u64,
    },
    /// Coordinator → worker: one routed chunk of stream items, to be
    /// applied in arrival order.
    Ingest {
        /// The items of the chunk.
        items: Vec<Item>,
    },
    /// Coordinator → worker: one routed chunk of signed turnstile updates,
    /// to be applied in arrival order (the turnstile kinds' counterpart of
    /// [`WireMessage::Ingest`]).
    IngestSigned {
        /// The signed updates of the chunk.
        updates: Vec<SignedUpdate>,
    },
    /// Coordinator → worker: a consistency barrier. Everything sent before
    /// it must be applied before the worker acts and acks.
    Barrier {
        /// The barrier epoch (strictly increasing per worker).
        epoch: u64,
        /// What the worker does at the barrier.
        kind: BarrierKind,
    },
    /// Worker → coordinator: the barrier at `epoch` has been executed.
    BarrierAck {
        /// The acking worker's shard index.
        shard: u64,
        /// The epoch being acknowledged.
        epoch: u64,
        /// The worker's full sealed snapshot, for `Query` barriers.
        snapshot: Option<Vec<u8>>,
    },
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
    /// Client → coordinator: draw a merged sample, while ingest keeps
    /// running (the live query plane). The typed [`QueryOptions`] pick
    /// between a fresh consistent cut and the published snapshot cache.
    ///
    /// A v1 client's bare `Query` (empty body) decodes as the default
    /// consistent options, so old clients keep getting the answer they
    /// always got.
    Query {
        /// The requested consistency level.
        options: QueryOptions,
    },
    /// Coordinator → client: the answer to a [`WireMessage::Query`] — the
    /// three fields the final job report prints, pinned to the cut that
    /// produced them.
    QueryReply {
        /// Stream items routed when the barrier cut the stream.
        processed: u64,
        /// FNV-1a 64 over the merged sampler's sealed snapshot bytes.
        merged_fnv: u64,
        /// The barrier epoch of the cut that produced this answer.
        epoch: u64,
        /// Chunks routed when the cut was taken.
        cut: u64,
        /// Whether the published snapshot cache served the answer
        /// (`true`) or a fresh consistent cut was forced (`false`).
        cached: bool,
        /// The merged sampler's drawn sample, in the report spelling
        /// (`index:<i>` | `empty` | `fail`).
        sample: String,
    },
    /// Coordinator → client: the query could not be answered — a typed
    /// rejection ([`reject`]) instead of a dropped connection.
    QueryRejected {
        /// Why ([`reject`] codes).
        code: u8,
        /// Human-readable detail for logs and error messages.
        detail: String,
    },
}

/// Rejection codes a [`WireMessage::QueryRejected`] can carry.
pub mod reject {
    /// No published cut satisfies the requested staleness bound and the
    /// consistent path is unavailable.
    pub const STALE: u8 = 0;
    /// The query plane is shutting down; the job has finished or is
    /// tearing down.
    pub const CLOSED: u8 = 1;
}

impl WireMessage {
    /// A [`WireMessage::Hello`] announcing this build's protocol version
    /// and full capability set.
    pub fn hello(shard: u64, resume_epoch: u64) -> Self {
        WireMessage::Hello {
            protocol: WIRE_PROTOCOL_VERSION,
            capabilities: caps::ALL,
            shard,
            resume_epoch,
        }
    }
}

/// Validates a worker's [`WireMessage::Hello`] against this build's
/// protocol version and the capability bits the job requires, returning
/// the `(shard, resume_epoch)` pair on success.
///
/// This is the coordinator's half of the (one-way) negotiation: a worker
/// from a different build fails here with the typed
/// [`WireError::VersionMismatch`] / [`WireError::CapabilityMissing`]
/// instead of a decode failure on some later frame.
pub fn check_hello(msg: &WireMessage, required_caps: u64) -> Result<(u64, u64), WireError> {
    match msg {
        WireMessage::Hello {
            protocol,
            capabilities,
            shard,
            resume_epoch,
        } => {
            if *protocol != WIRE_PROTOCOL_VERSION {
                return Err(WireError::VersionMismatch {
                    ours: WIRE_PROTOCOL_VERSION,
                    theirs: *protocol,
                });
            }
            let missing = required_caps & !capabilities;
            if missing != 0 {
                return Err(WireError::CapabilityMissing { missing });
            }
            Ok((*shard, *resume_epoch))
        }
        other => Err(WireError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Hello, got {other:?}"),
        ))),
    }
}

const KIND_HELLO: u8 = 0;
const KIND_INGEST: u8 = 1;
const KIND_BARRIER: u8 = 2;
const KIND_BARRIER_ACK: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;
const KIND_INGEST_SIGNED: u8 = 5;
const KIND_QUERY: u8 = 6;
const KIND_QUERY_REPLY: u8 = 7;
const KIND_QUERY_REJECTED: u8 = 8;

/// An update type the service can ship in an ingest message: the wire-level
/// face of the sampler-family layer.
///
/// The coordinator and worker loops are written once over
/// [`StreamUpdate`]; this trait supplies the only two kind-specific moves
/// they need — wrapping a routed chunk into the right ingest variant and
/// recognising that variant on arrival. Bare [`Item`]s travel as
/// [`WireMessage::Ingest`], [`SignedUpdate`]s as
/// [`WireMessage::IngestSigned`].
pub trait IngestPayload: StreamUpdate {
    /// Bytes one encoded update occupies ([`Self::put`]'s output) — the
    /// per-element floor length decoders validate before allocating.
    const WIRE_BYTES: usize;

    /// Capability bits a worker must announce before the coordinator
    /// ships it this update type ([`caps`]).
    const REQUIRED_CAPS: u64;

    /// Wraps a routed chunk into this update type's ingest message.
    fn into_ingest(chunk: Vec<Self>) -> WireMessage;

    /// Extracts the chunk if `msg` is this update type's ingest message;
    /// hands the message back otherwise so the caller can dispatch it.
    fn from_ingest(msg: WireMessage) -> Result<Vec<Self>, WireMessage>;

    /// Encodes one update (fixed width, [`Self::WIRE_BYTES`]) — shared by
    /// the ingest frames and the coordinator's durable replay buffers.
    fn put(w: &mut SnapshotWriter, update: &Self);

    /// Decodes one update written by [`Self::put`].
    fn get(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError>;
}

impl IngestPayload for Item {
    const WIRE_BYTES: usize = 8;
    const REQUIRED_CAPS: u64 = caps::QUERY;

    fn into_ingest(chunk: Vec<Self>) -> WireMessage {
        WireMessage::Ingest { items: chunk }
    }

    fn from_ingest(msg: WireMessage) -> Result<Vec<Self>, WireMessage> {
        match msg {
            WireMessage::Ingest { items } => Ok(items),
            other => Err(other),
        }
    }

    fn put(w: &mut SnapshotWriter, update: &Self) {
        w.put_u64(*update);
    }

    fn get(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl IngestPayload for SignedUpdate {
    const WIRE_BYTES: usize = 16;
    const REQUIRED_CAPS: u64 = caps::QUERY | caps::SIGNED_INGEST;

    fn into_ingest(chunk: Vec<Self>) -> WireMessage {
        WireMessage::IngestSigned { updates: chunk }
    }

    fn from_ingest(msg: WireMessage) -> Result<Vec<Self>, WireMessage> {
        match msg {
            WireMessage::IngestSigned { updates } => Ok(updates),
            other => Err(other),
        }
    }

    fn put(w: &mut SnapshotWriter, update: &Self) {
        w.put_u64(update.item);
        // Two's-complement cast: the full i64 range round-trips.
        w.put_u64(update.delta as u64);
    }

    fn get(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        let item = r.get_u64()?;
        let delta = r.get_u64()? as i64;
        Ok(SignedUpdate { item, delta })
    }
}

/// Why reading a message off a byte stream failed: transport trouble or a
/// frame that arrived intact but does not decode.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader/writer failed (including unexpected EOF
    /// mid-frame).
    Io(io::Error),
    /// The frame bytes arrived but are not a valid message.
    Codec(CodecError),
    /// The peer's `Hello` announced a different wire protocol version
    /// (see [`check_hello`]).
    VersionMismatch {
        /// The version this build speaks ([`WIRE_PROTOCOL_VERSION`]).
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// The peer's `Hello` lacks capability bits the job requires.
    CapabilityMissing {
        /// The required bits the peer did not announce ([`caps`]).
        missing: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire transport error: {e}"),
            WireError::Codec(e) => write!(f, "wire frame error: {e}"),
            WireError::VersionMismatch { ours, theirs } => write!(
                f,
                "wire protocol version mismatch: this build speaks v{ours}, peer speaks v{theirs}"
            ),
            WireError::CapabilityMissing { missing } => write!(
                f,
                "peer lacks required wire capabilities (missing bits {missing:#x})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Encodes a message as its sealed frame (without the length prefix).
pub fn encode_message(msg: &WireMessage) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::WIRE_MESSAGE);
    match msg {
        WireMessage::Hello {
            protocol,
            capabilities,
            shard,
            resume_epoch,
        } => {
            // Frozen layout (all fixed-width, version first): any future
            // protocol version's Hello still decodes, so mismatches fail
            // typed in `check_hello`, never as a misparse.
            w.put_u8(KIND_HELLO);
            w.put_u16(*protocol);
            w.put_u64(*capabilities);
            w.put_u64(*shard);
            w.put_u64(*resume_epoch);
        }
        WireMessage::Ingest { items } => {
            w.put_u8(KIND_INGEST);
            w.put_len(items.len());
            for item in items {
                Item::put(&mut w, item);
            }
        }
        WireMessage::IngestSigned { updates } => {
            w.put_u8(KIND_INGEST_SIGNED);
            w.put_len(updates.len());
            for update in updates {
                SignedUpdate::put(&mut w, update);
            }
        }
        WireMessage::Barrier { epoch, kind } => {
            w.put_u8(KIND_BARRIER);
            w.put_u64(*epoch);
            w.put_u8(match kind {
                BarrierKind::Checkpoint => 0,
                BarrierKind::Query => 1,
                BarrierKind::CheckpointPublish => 2,
            });
        }
        WireMessage::BarrierAck {
            shard,
            epoch,
            snapshot,
        } => {
            w.put_u8(KIND_BARRIER_ACK);
            w.put_u64(*shard);
            w.put_u64(*epoch);
            match snapshot {
                None => w.put_u8(0),
                Some(bytes) => {
                    w.put_u8(1);
                    w.put_len(bytes.len());
                    let mut payload = w.into_bytes();
                    payload.extend_from_slice(bytes);
                    return seal(tag::WIRE_MESSAGE, &payload);
                }
            }
        }
        WireMessage::Shutdown => {
            w.put_u8(KIND_SHUTDOWN);
        }
        WireMessage::Query { options } => {
            w.put_u8(KIND_QUERY);
            match options.consistency {
                QueryConsistency::Consistent => w.put_u8(0),
                QueryConsistency::Cached { max_epochs_stale } => {
                    w.put_u8(1);
                    w.put_u64(max_epochs_stale);
                }
            }
        }
        WireMessage::QueryReply {
            processed,
            merged_fnv,
            epoch,
            cut,
            cached,
            sample,
        } => {
            w.put_u8(KIND_QUERY_REPLY);
            w.put_u64(*processed);
            w.put_u64(*merged_fnv);
            w.put_u64(*epoch);
            w.put_u64(*cut);
            w.put_u8(u8::from(*cached));
            w.put_len(sample.len());
            let mut payload = w.into_bytes();
            payload.extend_from_slice(sample.as_bytes());
            return seal(tag::WIRE_MESSAGE, &payload);
        }
        WireMessage::QueryRejected { code, detail } => {
            w.put_u8(KIND_QUERY_REJECTED);
            w.put_u8(*code);
            w.put_len(detail.len());
            let mut payload = w.into_bytes();
            payload.extend_from_slice(detail.as_bytes());
            return seal(tag::WIRE_MESSAGE, &payload);
        }
    }
    seal(tag::WIRE_MESSAGE, &w.into_bytes())
}

/// Decodes a sealed frame (without the length prefix) back into a message.
pub fn decode_message(frame: &[u8]) -> Result<WireMessage, CodecError> {
    let payload = unseal(tag::WIRE_MESSAGE, frame)?;
    let mut r = SnapshotReader::new(payload);
    r.expect_tag(tag::WIRE_MESSAGE)?;
    let msg = match r.get_u8()? {
        KIND_HELLO => WireMessage::Hello {
            protocol: r.get_u16()?,
            capabilities: r.get_u64()?,
            shard: r.get_u64()?,
            resume_epoch: r.get_u64()?,
        },
        KIND_INGEST => {
            let len = r.get_len(Item::WIRE_BYTES)?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(Item::get(&mut r)?);
            }
            WireMessage::Ingest { items }
        }
        KIND_INGEST_SIGNED => {
            let len = r.get_len(SignedUpdate::WIRE_BYTES)?;
            let mut updates = Vec::with_capacity(len);
            for _ in 0..len {
                updates.push(SignedUpdate::get(&mut r)?);
            }
            WireMessage::IngestSigned { updates }
        }
        KIND_BARRIER => {
            let epoch = r.get_u64()?;
            let kind = match r.get_u8()? {
                0 => BarrierKind::Checkpoint,
                1 => BarrierKind::Query,
                2 => BarrierKind::CheckpointPublish,
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "barrier kind must be 0 (checkpoint), 1 (query) \
                               or 2 (checkpoint+publish)",
                    })
                }
            };
            WireMessage::Barrier { epoch, kind }
        }
        KIND_BARRIER_ACK => {
            let shard = r.get_u64()?;
            let epoch = r.get_u64()?;
            let snapshot = match r.get_u8()? {
                0 => None,
                1 => {
                    let len = r.get_len(1)?;
                    Some(r.get_bytes(len)?)
                }
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "ack snapshot flag must be 0 or 1",
                    })
                }
            };
            WireMessage::BarrierAck {
                shard,
                epoch,
                snapshot,
            }
        }
        KIND_SHUTDOWN => WireMessage::Shutdown,
        KIND_QUERY => {
            // Lenient on the body: a v1 client's Query had no body at all,
            // and it always meant "consistent cut". Decode that shape as
            // the default options so old clients keep working.
            let consistency = if r.remaining() == 0 {
                QueryConsistency::Consistent
            } else {
                match r.get_u8()? {
                    0 => QueryConsistency::Consistent,
                    1 => QueryConsistency::Cached {
                        max_epochs_stale: r.get_u64()?,
                    },
                    _ => {
                        return Err(CodecError::InvalidValue {
                            what: "query consistency must be 0 (consistent) or 1 (cached)",
                        })
                    }
                }
            };
            WireMessage::Query {
                options: QueryOptions { consistency },
            }
        }
        KIND_QUERY_REPLY => {
            let processed = r.get_u64()?;
            let merged_fnv = r.get_u64()?;
            let epoch = r.get_u64()?;
            let cut = r.get_u64()?;
            let cached = match r.get_u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "query reply cached flag must be 0 or 1",
                    })
                }
            };
            let len = r.get_len(1)?;
            let sample =
                String::from_utf8(r.get_bytes(len)?).map_err(|_| CodecError::InvalidValue {
                    what: "query reply sample is not utf-8",
                })?;
            WireMessage::QueryReply {
                processed,
                merged_fnv,
                epoch,
                cut,
                cached,
                sample,
            }
        }
        KIND_QUERY_REJECTED => {
            let code = r.get_u8()?;
            let len = r.get_len(1)?;
            let detail =
                String::from_utf8(r.get_bytes(len)?).map_err(|_| CodecError::InvalidValue {
                    what: "query rejection detail is not utf-8",
                })?;
            WireMessage::QueryRejected { code, detail }
        }
        _ => {
            return Err(CodecError::InvalidValue {
                what: "unknown wire message kind",
            })
        }
    };
    r.finish()?;
    Ok(msg)
}

/// Writes one length-prefixed message and flushes the writer (messages are
/// request/response turns; a buffered unflushed frame deadlocks the peer).
pub fn write_message<W: Write>(w: &mut W, msg: &WireMessage) -> io::Result<()> {
    let frame = encode_message(msg);
    let len = u32::try_from(frame.len())
        .ok()
        .filter(|&n| n <= MAX_MESSAGE_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "wire message of {} bytes exceeds MAX_MESSAGE_LEN ({MAX_MESSAGE_LEN}); \
                     for query acks this bounds one shard's snapshot — run the job with \
                     more shards to shrink per-shard state",
                    frame.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one length-prefixed message. Returns `Ok(None)` on a clean EOF
/// (the peer closed the stream *between* messages); EOF mid-frame is an
/// [`WireError::Io`] with [`io::ErrorKind::UnexpectedEof`]. The length
/// prefix is validated against [`MAX_MESSAGE_LEN`] before any allocation.
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<WireMessage>, WireError> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first read so EOF at a message boundary is `None` while
    // EOF inside the prefix is still an error.
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a wire length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_MESSAGE_LEN {
        return Err(WireError::Codec(CodecError::Truncated {
            needed: u64::from(len),
            remaining: u64::from(MAX_MESSAGE_LEN),
        }));
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame)?;
    Ok(Some(decode_message(&frame)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<WireMessage> {
        vec![
            WireMessage::hello(3, 17),
            WireMessage::Hello {
                protocol: 9,
                capabilities: 0,
                shard: 1,
                resume_epoch: 0,
            },
            WireMessage::Query {
                options: QueryOptions::consistent(),
            },
            WireMessage::Query {
                options: QueryOptions::cached(3),
            },
            WireMessage::QueryReply {
                processed: 123_456,
                merged_fnv: 0xDEAD_BEEF,
                epoch: 7,
                cut: 21,
                cached: true,
                sample: "index:42".to_string(),
            },
            WireMessage::QueryReply {
                processed: 0,
                merged_fnv: 0,
                epoch: 0,
                cut: 0,
                cached: false,
                sample: String::new(),
            },
            WireMessage::QueryRejected {
                code: reject::STALE,
                detail: "no cut within 2 epochs".to_string(),
            },
            WireMessage::Ingest {
                items: (0..1000).collect(),
            },
            WireMessage::Ingest { items: vec![] },
            WireMessage::IngestSigned {
                updates: (0..500u64)
                    .map(|i| SignedUpdate {
                        item: i,
                        delta: if i % 3 == 0 { -(i as i64) } else { i as i64 },
                    })
                    .collect(),
            },
            WireMessage::IngestSigned { updates: vec![] },
            WireMessage::Barrier {
                epoch: 9,
                kind: BarrierKind::Checkpoint,
            },
            WireMessage::Barrier {
                epoch: 10,
                kind: BarrierKind::Query,
            },
            WireMessage::Barrier {
                epoch: 11,
                kind: BarrierKind::CheckpointPublish,
            },
            WireMessage::BarrierAck {
                shard: 1,
                epoch: 9,
                snapshot: None,
            },
            WireMessage::BarrierAck {
                shard: 0,
                epoch: 10,
                snapshot: Some(vec![0xAB; 257]),
            },
            WireMessage::Shutdown,
        ]
    }

    #[test]
    fn messages_round_trip_through_a_stream() {
        let mut pipe = Vec::new();
        for msg in all_messages() {
            write_message(&mut pipe, &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(pipe);
        for expected in all_messages() {
            let got = read_message(&mut cursor).unwrap().expect("message");
            assert_eq!(got, expected);
        }
        assert!(read_message(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncation_and_corruption_fail_typed() {
        let mut pipe = Vec::new();
        write_message(
            &mut pipe,
            &WireMessage::Ingest {
                items: vec![1, 2, 3],
            },
        )
        .unwrap();
        // EOF inside the prefix.
        let mut short = std::io::Cursor::new(&pipe[..2]);
        assert!(matches!(read_message(&mut short), Err(WireError::Io(_))));
        // EOF inside the frame.
        let mut cut = std::io::Cursor::new(&pipe[..pipe.len() - 3]);
        assert!(matches!(read_message(&mut cut), Err(WireError::Io(_))));
        // Any flipped frame bit is caught (checksum or structure).
        for pos in 4..pipe.len() {
            let mut corrupt = pipe.clone();
            corrupt[pos] ^= 0x04;
            let mut c = std::io::Cursor::new(corrupt);
            assert!(
                matches!(read_message(&mut c), Err(WireError::Codec(_))),
                "flip at {pos} went unnoticed"
            );
        }
    }

    #[test]
    fn oversized_prefix_fails_before_allocating() {
        let mut pipe = Vec::new();
        pipe.extend_from_slice(&u32::MAX.to_le_bytes());
        pipe.extend_from_slice(&[0; 64]);
        let mut c = std::io::Cursor::new(pipe);
        assert!(matches!(
            read_message(&mut c),
            Err(WireError::Codec(CodecError::Truncated { .. }))
        ));
    }

    #[test]
    fn ingest_length_is_validated_before_allocating() {
        // A validly-sealed Ingest claiming u64::MAX items must fail on the
        // length check, not attempt the allocation.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::WIRE_MESSAGE);
        w.put_u8(1); // KIND_INGEST
        w.put_u64(u64::MAX);
        let frame = seal(tag::WIRE_MESSAGE, &w.into_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn signed_ingest_length_is_validated_before_allocating() {
        // Same guard as the unsigned variant: a sealed IngestSigned frame
        // claiming u64::MAX updates fails the 16-bytes-per-update length
        // check instead of attempting the allocation.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::WIRE_MESSAGE);
        w.put_u8(5); // KIND_INGEST_SIGNED
        w.put_u64(u64::MAX);
        let frame = seal(tag::WIRE_MESSAGE, &w.into_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn signed_ingest_round_trips_extreme_deltas() {
        let updates = vec![
            SignedUpdate {
                item: u64::MAX,
                delta: i64::MIN,
            },
            SignedUpdate {
                item: 0,
                delta: i64::MAX,
            },
            SignedUpdate { item: 7, delta: -1 },
        ];
        let frame = encode_message(&WireMessage::IngestSigned {
            updates: updates.clone(),
        });
        assert_eq!(
            decode_message(&frame).unwrap(),
            WireMessage::IngestSigned { updates }
        );
    }

    #[test]
    fn ingest_payloads_wrap_and_unwrap_their_own_variant() {
        let items = vec![1u64, 2, 3];
        match <Item as IngestPayload>::from_ingest(Item::into_ingest(items.clone())) {
            Ok(got) => assert_eq!(got, items),
            Err(other) => panic!("item payload bounced: {other:?}"),
        }
        let updates = vec![SignedUpdate::insert(4), SignedUpdate::delete(4)];
        match <SignedUpdate as IngestPayload>::from_ingest(SignedUpdate::into_ingest(
            updates.clone(),
        )) {
            Ok(got) => assert_eq!(got, updates),
            Err(other) => panic!("signed payload bounced: {other:?}"),
        }
        // Cross-kind messages bounce back for the caller to dispatch.
        assert!(<Item as IngestPayload>::from_ingest(WireMessage::Shutdown).is_err());
        assert!(
            <SignedUpdate as IngestPayload>::from_ingest(WireMessage::Ingest { items: vec![] })
                .is_err()
        );
    }

    #[test]
    fn hello_negotiation_is_typed() {
        // A same-build Hello negotiates and hands back shard + epoch.
        assert_eq!(
            check_hello(&WireMessage::hello(4, 9), caps::ALL).unwrap(),
            (4, 9)
        );
        // A foreign protocol version round-trips the wire (frozen layout)
        // and fails negotiation as the typed VersionMismatch.
        let foreign = WireMessage::Hello {
            protocol: WIRE_PROTOCOL_VERSION + 1,
            capabilities: caps::ALL,
            shard: 0,
            resume_epoch: 0,
        };
        let decoded = decode_message(&encode_message(&foreign)).unwrap();
        assert_eq!(decoded, foreign);
        assert!(matches!(
            check_hello(&decoded, caps::QUERY),
            Err(WireError::VersionMismatch {
                ours: WIRE_PROTOCOL_VERSION,
                theirs
            }) if theirs == WIRE_PROTOCOL_VERSION + 1
        ));
        // Missing capability bits fail typed too, naming the missing bits.
        let limited = WireMessage::Hello {
            protocol: WIRE_PROTOCOL_VERSION,
            capabilities: caps::QUERY,
            shard: 0,
            resume_epoch: 0,
        };
        assert!(matches!(
            check_hello(&limited, caps::QUERY | caps::SIGNED_INGEST),
            Err(WireError::CapabilityMissing {
                missing: caps::SIGNED_INGEST
            })
        ));
        // A non-Hello message is rejected outright.
        assert!(check_hello(&WireMessage::Shutdown, 0).is_err());
    }

    #[test]
    fn query_reply_length_is_validated_before_allocating() {
        // A sealed QueryReply claiming a huge sample length fails the
        // length check instead of attempting the allocation.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::WIRE_MESSAGE);
        w.put_u8(7); // KIND_QUERY_REPLY
        w.put_u64(1); // processed
        w.put_u64(2); // merged_fnv
        w.put_u64(3); // epoch
        w.put_u64(4); // cut
        w.put_u8(0); // cached
        w.put_u64(u64::MAX);
        let frame = seal(tag::WIRE_MESSAGE, &w.into_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn bare_v1_query_decodes_as_consistent() {
        // A v1 client's Query carried no body at all; it must decode as
        // the default consistent options, not as a truncation error.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::WIRE_MESSAGE);
        w.put_u8(6); // KIND_QUERY, nothing after it
        let frame = seal(tag::WIRE_MESSAGE, &w.into_bytes());
        assert_eq!(
            decode_message(&frame).unwrap(),
            WireMessage::Query {
                options: QueryOptions::consistent(),
            }
        );
        // An unknown consistency byte still fails typed.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::WIRE_MESSAGE);
        w.put_u8(6);
        w.put_u8(9);
        let frame = seal(tag::WIRE_MESSAGE, &w.into_bytes());
        assert!(matches!(
            decode_message(&frame),
            Err(CodecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn barrier_acks_embed_snapshots_exactly() {
        let snapshot = vec![7u8; 4096];
        let frame = encode_message(&WireMessage::BarrierAck {
            shard: 2,
            epoch: 5,
            snapshot: Some(snapshot.clone()),
        });
        match decode_message(&frame).unwrap() {
            WireMessage::BarrierAck {
                shard: 2,
                epoch: 5,
                snapshot: Some(bytes),
            } => assert_eq!(bytes, snapshot),
            other => panic!("decoded {other:?}"),
        }
    }
}
