//! Pluggable byte transports under the wire protocol: the same
//! length-prefixed sealed-envelope framing ([`super::read_message`] /
//! [`super::write_message`]) over whichever duplex byte stream connects
//! the two processes.
//!
//! The protocol module defines *what* travels; this module defines
//! *where*. A [`Connection`] is one framed duplex conversation (send a
//! [`WireMessage`], receive one), a [`Listener`] hands out inbound
//! connections. Two transports ship:
//!
//! * **stdio / pipes** — the coordinator spawns the worker as a child and
//!   talks over its stdin/stdout ([`StdioListener`] on the worker side,
//!   a [`FramedConnection`] over the child's pipe pair on the
//!   coordinator side). Single-host, zero configuration.
//! * **TCP sockets** — the worker binds a [`TcpServerListener`] (the
//!   `--listen` mode) and the coordinator dials it with [`tcp_connect`],
//!   so shards can live on other hosts. `TCP_NODELAY` is set on every
//!   stream: the protocol is strict request/response turns, and Nagle
//!   batching would serialize every barrier round-trip with the delayed
//!   ACK timer.
//!
//! The two behave identically at the protocol layer — the service's
//! SIGKILL-recovery smoke tests run the same scenario over both — with
//! one lifecycle difference: a pipe pair dies with its processes (one
//! connection, ever), while a TCP listener outlives a dead peer, which is
//! what lets a worker survive a crashed coordinator and re-handshake
//! with its replacement. [`Listener::accept`] returns `Ok(None)` when a
//! transport is out of connections (stdio after its one pair); TCP
//! accepts forever.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use super::{read_message, write_message, WireError, WireMessage};

/// The next sleep in the bounded accept-poll backoff schedule: doubling
/// from [`POLL_BACKOFF_FLOOR`] up to [`POLL_BACKOFF_CAP`].
///
/// An idle accept loop built on [`TcpServerListener::accept_pending`]
/// alone spins a core; sleeping a fixed tick either wastes latency (long
/// tick) or still burns CPU (short tick). The schedule starts at 1 ms —
/// a freshly-idle listener stays responsive — and caps at 16 ms, so an
/// idle window of any length costs a bounded ~64 polls/second instead of
/// millions.
pub fn poll_backoff(previous: Duration) -> Duration {
    if previous < POLL_BACKOFF_FLOOR {
        POLL_BACKOFF_FLOOR
    } else {
        (previous * 2).min(POLL_BACKOFF_CAP)
    }
}

/// Where the accept-poll backoff schedule starts.
pub const POLL_BACKOFF_FLOOR: Duration = Duration::from_millis(1);

/// Where the accept-poll backoff schedule tops out.
pub const POLL_BACKOFF_CAP: Duration = Duration::from_millis(16);

/// One framed duplex conversation: send a message, receive a message.
///
/// Implementations own any buffering; [`Connection::send`] flushes (the
/// protocol is request/response turns — an unflushed frame deadlocks the
/// peer).
pub trait Connection {
    /// Writes one message and flushes.
    fn send(&mut self, msg: &WireMessage) -> io::Result<()>;

    /// Reads the next message; `Ok(None)` is a clean end-of-stream at a
    /// message boundary (the peer closed or died between messages).
    fn recv(&mut self) -> Result<Option<WireMessage>, WireError>;
}

/// A source of inbound [`Connection`]s (the worker side of a transport).
pub trait Listener {
    /// The connection type this transport produces.
    type Conn: Connection;

    /// Blocks until the next inbound connection; `Ok(None)` means the
    /// transport has no more connections to give (stdio after its one
    /// pipe pair) and the accept loop should end.
    fn accept(&mut self) -> io::Result<Option<Self::Conn>>;
}

/// The wire framing over any `Read`/`Write` pair — child-process pipes,
/// socket halves, or in-memory buffers in tests.
pub struct FramedConnection<R: Read, W: Write> {
    reader: BufReader<R>,
    writer: BufWriter<W>,
}

impl<R: Read, W: Write> FramedConnection<R, W> {
    /// Frames the given byte-stream pair.
    pub fn new(reader: R, writer: W) -> Self {
        Self {
            reader: BufReader::new(reader),
            writer: BufWriter::new(writer),
        }
    }
}

impl<R: Read, W: Write> Connection for FramedConnection<R, W> {
    fn send(&mut self, msg: &WireMessage) -> io::Result<()> {
        write_message(&mut self.writer, msg)
    }

    fn recv(&mut self) -> Result<Option<WireMessage>, WireError> {
        read_message(&mut self.reader)
    }
}

/// A framed TCP connection (the socket transport's [`Connection`]).
pub type TcpConnection = FramedConnection<TcpStream, TcpStream>;

/// Frames an accepted/connected TCP stream (sets `TCP_NODELAY`; the
/// read half is a `try_clone` of the same socket).
pub fn tcp_framed(stream: TcpStream) -> io::Result<TcpConnection> {
    stream.set_nodelay(true)?;
    let reader = stream.try_clone()?;
    Ok(FramedConnection::new(reader, stream))
}

/// Dials a worker endpoint (`host:port`), returning the framed
/// connection.
pub fn tcp_connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpConnection> {
    tcp_framed(TcpStream::connect(addr)?)
}

/// The worker side of the stdio/pipe transport: exactly one connection —
/// this process's stdin/stdout — then exhausted.
pub struct StdioListener {
    taken: bool,
}

impl StdioListener {
    /// A listener over this process's stdin/stdout.
    pub fn new() -> Self {
        Self { taken: false }
    }
}

impl Default for StdioListener {
    fn default() -> Self {
        Self::new()
    }
}

impl Listener for StdioListener {
    type Conn = FramedConnection<io::Stdin, io::Stdout>;

    fn accept(&mut self) -> io::Result<Option<Self::Conn>> {
        if self.taken {
            return Ok(None);
        }
        self.taken = true;
        Ok(Some(FramedConnection::new(io::stdin(), io::stdout())))
    }
}

/// The worker (and query-plane) side of the socket transport: accepts
/// framed TCP connections, forever.
pub struct TcpServerListener {
    inner: TcpListener,
}

impl TcpServerListener {
    /// Binds `addr` (use port `0` for an ephemeral port; read it back
    /// with [`Self::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(Self {
            inner: TcpListener::bind(addr)?,
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Non-blocking poll: the next pending connection if one is already
    /// queued, `None` otherwise. This is the ingest loop's way to serve
    /// the query plane without ever parking on `accept` — ingest
    /// continues whenever no client is waiting.
    pub fn accept_pending(&self) -> io::Result<Option<TcpConnection>> {
        self.inner.set_nonblocking(true)?;
        let pending = match self.inner.accept() {
            Ok((stream, _)) => Some(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
            Err(e) => {
                // Restore blocking mode before surfacing the error.
                let _ = self.inner.set_nonblocking(false);
                return Err(e);
            }
        };
        self.inner.set_nonblocking(false)?;
        match pending {
            Some(stream) => {
                stream.set_nonblocking(false)?;
                Ok(Some(tcp_framed(stream)?))
            }
            None => Ok(None),
        }
    }

    /// Polls for a pending connection for up to `timeout`, sleeping the
    /// bounded [`poll_backoff`] schedule between polls — the dedicated
    /// accept thread's replacement for a `accept_pending` busy loop. An
    /// idle window costs a handful of polls (1, 2, 4, … 16 ms apart),
    /// never a spinning core.
    pub fn accept_within(&self, timeout: Duration) -> io::Result<Option<TcpConnection>> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::ZERO;
        loop {
            if let Some(conn) = self.accept_pending()? {
                return Ok(Some(conn));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            backoff = poll_backoff(backoff);
            std::thread::sleep(backoff.min(deadline - now));
        }
    }
}

impl Listener for TcpServerListener {
    type Conn = TcpConnection;

    fn accept(&mut self) -> io::Result<Option<Self::Conn>> {
        let (stream, _) = self.inner.accept()?;
        Ok(Some(tcp_framed(stream)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_connection_round_trips_over_buffers() {
        let mut outbound = Vec::new();
        {
            let mut conn = FramedConnection::new(io::empty(), &mut outbound);
            conn.send(&WireMessage::hello(2, 5)).unwrap();
            conn.send(&WireMessage::Shutdown).unwrap();
        }
        let mut conn = FramedConnection::new(outbound.as_slice(), io::sink());
        assert_eq!(conn.recv().unwrap(), Some(WireMessage::hello(2, 5)));
        assert_eq!(conn.recv().unwrap(), Some(WireMessage::Shutdown));
        assert!(conn.recv().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn tcp_transport_round_trips_and_survives_peer_loss() {
        let mut listener = TcpServerListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: echo one message, then the peer drops.
            let mut conn = listener.accept().unwrap().expect("tcp accepts");
            let msg = conn.recv().unwrap().expect("message");
            conn.send(&msg).unwrap();
            assert!(conn.recv().unwrap().is_none(), "peer closed cleanly");
            // The listener outlives the dead peer: a second connection
            // works (this is what coordinator-crash recovery leans on).
            let mut conn = listener.accept().unwrap().expect("tcp accepts again");
            assert_eq!(
                conn.recv().unwrap(),
                Some(WireMessage::Query {
                    options: Default::default(),
                })
            );
            conn.send(&WireMessage::QueryReply {
                processed: 7,
                merged_fnv: 9,
                epoch: 1,
                cut: 2,
                cached: false,
                sample: "empty".to_string(),
            })
            .unwrap();
        });

        {
            let mut conn = tcp_connect(addr).unwrap();
            let sent = WireMessage::Barrier {
                epoch: 3,
                kind: crate::wire::BarrierKind::Query,
            };
            conn.send(&sent).unwrap();
            assert_eq!(conn.recv().unwrap(), Some(sent));
        } // dropped: simulates the first peer dying

        let mut conn = tcp_connect(addr).unwrap();
        conn.send(&WireMessage::Query {
            options: Default::default(),
        })
        .unwrap();
        match conn.recv().unwrap() {
            Some(WireMessage::QueryReply { processed: 7, .. }) => {}
            other => panic!("expected reply, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn accept_pending_polls_without_blocking() {
        let listener = TcpServerListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Nothing queued: the poll returns immediately with None.
        assert!(listener.accept_pending().unwrap().is_none());
        // Queue a client, then poll until it surfaces (the connect is
        // asynchronous to the accept queue).
        let client = std::thread::spawn(move || {
            let mut conn = tcp_connect(addr).unwrap();
            conn.send(&WireMessage::Query {
                options: Default::default(),
            })
            .unwrap();
        });
        let mut conn = listener
            .accept_within(Duration::from_secs(10))
            .unwrap()
            .expect("queued client surfaces");
        assert_eq!(
            conn.recv().unwrap(),
            Some(WireMessage::Query {
                options: Default::default(),
            })
        );
        client.join().unwrap();
    }

    #[test]
    fn poll_backoff_schedule_is_bounded() {
        // The schedule starts at the floor, doubles, and pins at the cap.
        let mut backoff = Duration::ZERO;
        let mut seen = Vec::new();
        for _ in 0..8 {
            backoff = poll_backoff(backoff);
            seen.push(backoff.as_millis());
        }
        assert_eq!(seen, [1, 2, 4, 8, 16, 16, 16, 16]);
        // Consequence: any one-second idle window costs a bounded number
        // of polls (floor-to-cap ramp plus cap-spaced ticks), not a spin.
        let mut polls = 0u32;
        let mut waited = Duration::ZERO;
        let mut step = Duration::ZERO;
        while waited < Duration::from_secs(1) {
            polls += 1;
            step = poll_backoff(step);
            waited += step;
        }
        assert!(polls <= 68, "idle second costs {polls} polls");
    }

    #[test]
    fn idle_accept_within_sleeps_instead_of_spinning() {
        let listener = TcpServerListener::bind("127.0.0.1:0").unwrap();
        // An idle window returns None at the deadline; the backoff
        // schedule means the wait is dominated by sleeps, not polls.
        let start = Instant::now();
        assert!(listener
            .accept_within(Duration::from_millis(50))
            .unwrap()
            .is_none());
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(50),
            "returned {elapsed:?} before the idle deadline"
        );
    }

    #[test]
    fn stdio_listener_is_one_shot() {
        let mut listener = StdioListener::new();
        assert!(listener.accept().unwrap().is_some());
        assert!(listener.accept().unwrap().is_none(), "stdio is one pair");
    }
}
