//! Stream update types and window specifications.

/// A coordinate index of the underlying frequency vector `f ∈ R^n`.
///
/// The paper indexes coordinates by `i ∈ [n]`; we use `u64` so the same type
/// works for the polynomially-duplicated universes of the baseline samplers.
pub type Item = u64;

/// A 1-based position in the stream (the paper's "timestamp").
pub type Timestamp = u64;

/// A signed update `(i, Δ)` in the (strict or general) turnstile model.
///
/// The update causes `f_i ← f_i + Δ`. In the insertion-only model every
/// `Δ = +1`, which is represented directly by a bare [`Item`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignedUpdate {
    /// Coordinate being updated.
    pub item: Item,
    /// Signed change applied to the coordinate.
    pub delta: i64,
}

impl SignedUpdate {
    /// A unit insertion to `item`.
    pub fn insert(item: Item) -> Self {
        Self { item, delta: 1 }
    }

    /// A unit deletion from `item`.
    pub fn delete(item: Item) -> Self {
        Self { item, delta: -1 }
    }
}

/// An update a sharded front-end can route: any update type that names the
/// coordinate it touches.
///
/// This is the seam the sampler-family layer is built on. The scatter /
/// stage / flush plumbing in `tps_core` (and the ingest service above it)
/// only ever needs two things from an update — a copyable value to move
/// through queues, and the coordinate that decides which shard owns it.
/// Insertion-only streams use a bare [`Item`]; turnstile streams use
/// [`SignedUpdate`]. Hash-routing on [`StreamUpdate::route_key`] sends
/// every update of a coordinate to the same shard, which is exactly the
/// item-disjointness the exact merge laws require.
pub trait StreamUpdate: Copy + Send + std::fmt::Debug + 'static {
    /// The coordinate this update touches, used for shard routing.
    fn route_key(self) -> Item;
}

impl StreamUpdate for Item {
    fn route_key(self) -> Item {
        self
    }
}

impl StreamUpdate for SignedUpdate {
    fn route_key(self) -> Item {
        self.item
    }
}

/// A unit update to entry `(row, col)` of an implicit matrix `M ∈ R^{n×d}`
/// in the insertion-only model (Section 3.2.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixUpdate {
    /// Row index of the updated entry.
    pub row: u64,
    /// Column index of the updated entry.
    pub col: u64,
}

impl MatrixUpdate {
    /// Creates a unit update to `(row, col)`.
    pub fn new(row: u64, col: u64) -> Self {
        Self { row, col }
    }
}

/// A sliding-window specification: only the `width` most recent updates are
/// active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window size `W` in number of updates.
    pub width: u64,
}

impl WindowSpec {
    /// Creates a window of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        Self { width }
    }

    /// Whether an update made at `update_time` is still active at
    /// `current_time` (both 1-based stream positions).
    ///
    /// Mirrors the paper's convention: at time `t` the active updates are
    /// those with positions in `(t - W, t]`.
    pub fn is_active(&self, update_time: Timestamp, current_time: Timestamp) -> bool {
        update_time <= current_time && update_time + self.width > current_time
    }

    /// The earliest still-active position at `current_time`.
    pub fn earliest_active(&self, current_time: Timestamp) -> Timestamp {
        (current_time + 1).saturating_sub(self.width).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_update_constructors() {
        assert_eq!(SignedUpdate::insert(3), SignedUpdate { item: 3, delta: 1 });
        assert_eq!(SignedUpdate::delete(3), SignedUpdate { item: 3, delta: -1 });
    }

    #[test]
    fn window_activity_boundaries() {
        let w = WindowSpec::new(5);
        // At time 10, active positions are 6..=10.
        assert!(!w.is_active(5, 10));
        assert!(w.is_active(6, 10));
        assert!(w.is_active(10, 10));
        assert!(!w.is_active(11, 10));
        assert_eq!(w.earliest_active(10), 6);
    }

    #[test]
    fn window_earliest_active_at_stream_start() {
        let w = WindowSpec::new(100);
        assert_eq!(w.earliest_active(5), 1);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_window_panics() {
        let _ = WindowSpec::new(0);
    }
}
