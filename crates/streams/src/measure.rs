//! Measure functions `G` and their per-increment bounds.
//!
//! The paper's framework (Framework 1.3 / Theorem 3.1) applies to any
//! measure function `G : R → R≥0` with `G(0) = 0`, `G(x) = G(-x)`, `G`
//! non-decreasing in `|x|`, provided two quantities can be bounded *with
//! certainty* (any randomised estimate would re-introduce additive error and
//! destroy truly-perfectness):
//!
//! 1. `ζ`, an upper bound on the increment `G(x) - G(x-1)` over the range of
//!    frequencies that can occur, which normalises the rejection step; and
//! 2. `F̂_G`, a lower bound on `F_G = Σ_i G(f_i)`, which determines how many
//!    parallel instances are needed for a target failure probability `δ`.
//!
//! Each implementation documents the bound it provides and the theorem in the
//! paper it instantiates.

/// A non-negative measure function `G` on integer frequencies.
///
/// Only non-negative integer frequencies are passed to
/// [`MeasureFn::value`]; turnstile callers take absolute values first, which
/// matches the paper's requirement `G(x) = G(-x)`.
///
/// `PartialEq` compares the measure's *parameters*: two equal measures
/// define the same target distribution, which is what merge-compatibility
/// checks (and the snapshot decoder's cross-shard validation) rely on.
pub trait MeasureFn: Clone + Send + Sync + PartialEq {
    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;

    /// `G(x)` for a non-negative integer frequency `x`. Must satisfy
    /// `G(0) = 0` and be non-decreasing.
    fn value(&self, x: u64) -> f64;

    /// The increment `G(c) - G(c-1)` for `c ≥ 1`. The default implementation
    /// evaluates `value` twice; implementations may override it with a closed
    /// form for numerical stability.
    fn delta(&self, c: u64) -> f64 {
        debug_assert!(c >= 1);
        self.value(c) - self.value(c - 1)
    }

    /// An upper bound `ζ ≥ G(x) - G(x-1)` valid for every `1 ≤ x ≤ max_freq`.
    ///
    /// `max_freq` is a *certain* upper bound on any frequency that can occur
    /// (e.g. the stream length, or the deterministic Misra–Gries bound on
    /// `‖f‖_∞` used by the `L_p` samplers).
    fn increment_bound(&self, max_freq: u64) -> f64;

    /// A lower bound on `F_G` that holds with certainty for **any**
    /// insertion-only stream of length `m ≥ 1`.
    ///
    /// Used to size the number of parallel sampler instances
    /// (`O(ζ m / F̂_G · log 1/δ)`, Theorem 3.1). Implementations must never
    /// overestimate: an overestimate would make the sampler fail too often
    /// but, more importantly, a randomised estimate would break truly-perfect
    /// sampling, so the bound must be a worst-case certainty.
    fn fg_lower_bound(&self, m: u64) -> f64;
}

/// `G(x) = |x|^p` — the `L_p`/`F_p` sampling measure (Theorems 1.4 and 3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Creates the measure `G(x) = x^p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 2]` (the range covered by the paper's
    /// insertion-only theorems; larger integer `p` is handled by the
    /// random-order samplers instead).
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 2.0,
            "Lp measure requires p in (0, 2], got {p}"
        );
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl MeasureFn for Lp {
    fn name(&self) -> &'static str {
        "Lp"
    }

    fn value(&self, x: u64) -> f64 {
        (x as f64).powf(self.p)
    }

    fn increment_bound(&self, max_freq: u64) -> f64 {
        if self.p <= 1.0 {
            // x^p - (x-1)^p ≤ 1 for p ≤ 1 (Theorem 3.5).
            1.0
        } else {
            // x^p - (x-1)^p ≤ p · max^{p-1} ≤ 2 · max^{p-1} for p ∈ (1, 2]
            // (Theorem 3.4 uses 2·Z^{p-1}).
            let m = (max_freq.max(1)) as f64;
            self.p * m.powf(self.p - 1.0)
        }
    }

    fn fg_lower_bound(&self, m: u64) -> f64 {
        let m = m.max(1) as f64;
        if self.p <= 1.0 {
            // F_p ≥ m^p: concentrating all mass on one coordinate minimises
            // F_p for p ≤ 1.
            m.powf(self.p)
        } else {
            // F_p ≥ m^p / n^{p-1} in general, but without knowing n the only
            // certain bound from the stream length alone is F_p ≥ m
            // (spreading mass over m distinct items minimises F_p for p ≥ 1).
            m
        }
    }
}

/// The `L_1 − L_2` M-estimator `G(x) = 2(√(1 + x²/2) − 1)` (Corollary 3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct L1L2;

impl MeasureFn for L1L2 {
    fn name(&self) -> &'static str {
        "L1-L2"
    }

    fn value(&self, x: u64) -> f64 {
        let x = x as f64;
        2.0 * ((1.0 + x * x / 2.0).sqrt() - 1.0)
    }

    fn increment_bound(&self, _max_freq: u64) -> f64 {
        // G'(x) = x / sqrt(1 + x²/2) ≤ √2 < 3; the paper uses the slack
        // constant 3.
        3.0
    }

    fn fg_lower_bound(&self, m: u64) -> f64 {
        // G is convex with G(0) = 0, hence G(x) ≥ G(1)·x for integer x ≥ 0,
        // so F_G ≥ G(1) · m.
        self.value(1) * m.max(1) as f64
    }
}

/// The Fair M-estimator `G(x) = τ|x| − τ² ln(1 + |x|/τ)` (Corollary 3.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fair {
    tau: f64,
}

impl Fair {
    /// Creates the Fair estimator with parameter `τ > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `τ` is not strictly positive.
    pub fn new(tau: f64) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "Fair estimator requires tau > 0"
        );
        Self { tau }
    }

    /// The parameter `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl MeasureFn for Fair {
    fn name(&self) -> &'static str {
        "Fair"
    }

    fn value(&self, x: u64) -> f64 {
        let x = x as f64;
        self.tau * x - self.tau * self.tau * (1.0 + x / self.tau).ln()
    }

    fn increment_bound(&self, _max_freq: u64) -> f64 {
        // G'(x) = τ·x/(τ + x) < τ.
        self.tau
    }

    fn fg_lower_bound(&self, m: u64) -> f64 {
        // Convex with G(0)=0 ⇒ F_G ≥ G(1)·m.
        self.value(1) * m.max(1) as f64
    }
}

/// The Huber M-estimator: `G(x) = x²/(2τ)` for `|x| ≤ τ`, `|x| − τ/2`
/// otherwise (Corollary 3.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Huber {
    tau: f64,
}

impl Huber {
    /// Creates the Huber estimator with parameter `τ > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `τ` is not strictly positive.
    pub fn new(tau: f64) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "Huber estimator requires tau > 0"
        );
        Self { tau }
    }

    /// The parameter `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl MeasureFn for Huber {
    fn name(&self) -> &'static str {
        "Huber"
    }

    fn value(&self, x: u64) -> f64 {
        let x = x as f64;
        if x <= self.tau {
            x * x / (2.0 * self.tau)
        } else {
            x - self.tau / 2.0
        }
    }

    fn increment_bound(&self, _max_freq: u64) -> f64 {
        // G'(x) = x/τ on [0, τ] and 1 afterwards, so increments are < 1
        // whenever τ ≥ 1; for τ < 1 the quadratic branch only covers x < 1 so
        // the first integer increment is G(1) - G(0) ≤ 1 - τ/2 < 1 as well.
        1.0
    }

    fn fg_lower_bound(&self, m: u64) -> f64 {
        // Convex with G(0)=0 ⇒ F_G ≥ G(1)·m (G(1) = min(1/(2τ), 1 − τ/2)).
        self.value(1) * m.max(1) as f64
    }
}

/// The Tukey biweight measure: `G(x) = τ²/6 · (1 − (1 − x²/τ²)³)` for
/// `|x| ≤ τ` and `τ²/6` otherwise (Section 5).
///
/// Tukey is *bounded*, so `F_G` can be as small as `G(1)·F_0 ≪ m` and the
/// generic insertion-only framework would need too many instances; the paper
/// instead samples Tukey through an `F_0` sampler (Theorem 5.4). The measure
/// is still defined here so the ground-truth distribution and the rejection
/// step `G(c)/G(τ)` can be computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tukey {
    tau: f64,
}

impl Tukey {
    /// Creates the Tukey estimator with parameter `τ > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `τ` is not strictly positive.
    pub fn new(tau: f64) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "Tukey estimator requires tau > 0"
        );
        Self { tau }
    }

    /// The parameter `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The saturation value `G(τ) = τ²/6`, the maximum of the measure.
    pub fn saturation(&self) -> f64 {
        self.tau * self.tau / 6.0
    }
}

impl MeasureFn for Tukey {
    fn name(&self) -> &'static str {
        "Tukey"
    }

    fn value(&self, x: u64) -> f64 {
        let x = x as f64;
        let t2 = self.tau * self.tau;
        if x <= self.tau {
            let r = 1.0 - x * x / t2;
            t2 / 6.0 * (1.0 - r * r * r)
        } else {
            t2 / 6.0
        }
    }

    fn increment_bound(&self, _max_freq: u64) -> f64 {
        // G' is maximised at x = τ/√5 with value 16τ/(25√5) < 0.287·τ; a
        // simple certain bound is τ/2. For τ < 2 the whole function is below
        // τ²/6 so increments are also below τ²/6.
        (self.tau / 2.0).min(self.saturation())
    }

    fn fg_lower_bound(&self, m: u64) -> f64 {
        // Bounded measure: the only certain bound from the stream length is a
        // single item's first increment.
        let _ = m;
        self.value(1)
    }
}

/// A concave sublinear measure `G(x) = ln(1 + x)`, representative of the
/// concave-function samplers of Cohen–Geri that the framework also covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConcaveLog;

impl MeasureFn for ConcaveLog {
    fn name(&self) -> &'static str {
        "log(1+x)"
    }

    fn value(&self, x: u64) -> f64 {
        (1.0 + x as f64).ln()
    }

    fn increment_bound(&self, _max_freq: u64) -> f64 {
        // ln(1 + x) − ln(x) ≤ ln 2 for x ≥ 1.
        std::f64::consts::LN_2
    }

    fn fg_lower_bound(&self, m: u64) -> f64 {
        // Concentrating all mass on one coordinate minimises F_G for concave
        // G, so F_G ≥ ln(1 + m).
        (1.0 + m.max(1) as f64).ln()
    }
}

/// A capped count `G(x) = min(x, cap)`, a simple concave measure used by
/// frequency-cap statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CappedCount {
    cap: u64,
}

impl CappedCount {
    /// Creates a capped-count measure with the given cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: u64) -> Self {
        assert!(cap > 0, "cap must be positive");
        Self { cap }
    }

    /// The cap value.
    pub fn cap(&self) -> u64 {
        self.cap
    }
}

impl MeasureFn for CappedCount {
    fn name(&self) -> &'static str {
        "capped-count"
    }

    fn value(&self, x: u64) -> f64 {
        x.min(self.cap) as f64
    }

    fn increment_bound(&self, _max_freq: u64) -> f64 {
        1.0
    }

    fn fg_lower_bound(&self, m: u64) -> f64 {
        // Worst case: everything lands on one coordinate, F_G = cap; for
        // m < cap it is m.
        m.min(self.cap).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_increment_bound<G: MeasureFn>(g: &G, max_freq: u64) {
        let zeta = g.increment_bound(max_freq);
        for c in 1..=max_freq {
            let d = g.delta(c);
            assert!(
                d <= zeta + 1e-9,
                "{}: increment at {c} is {d} > zeta {zeta}",
                g.name()
            );
            assert!(d >= -1e-9, "{}: measure must be non-decreasing", g.name());
        }
    }

    #[test]
    fn all_measures_have_zero_at_origin() {
        assert_eq!(Lp::new(1.5).value(0), 0.0);
        assert_eq!(L1L2.value(0), 0.0);
        assert_eq!(Fair::new(2.0).value(0), 0.0);
        assert_eq!(Huber::new(2.0).value(0), 0.0);
        assert_eq!(Tukey::new(5.0).value(0), 0.0);
        assert_eq!(ConcaveLog.value(0), 0.0);
        assert_eq!(CappedCount::new(3).value(0), 0.0);
    }

    #[test]
    fn increment_bounds_hold_for_all_measures() {
        check_increment_bound(&Lp::new(0.5), 500);
        check_increment_bound(&Lp::new(1.0), 500);
        check_increment_bound(&Lp::new(1.5), 500);
        check_increment_bound(&Lp::new(2.0), 500);
        check_increment_bound(&L1L2, 500);
        check_increment_bound(&Fair::new(3.0), 500);
        check_increment_bound(&Huber::new(2.5), 500);
        check_increment_bound(&Huber::new(0.5), 500);
        check_increment_bound(&Tukey::new(10.0), 500);
        check_increment_bound(&ConcaveLog, 500);
        check_increment_bound(&CappedCount::new(7), 500);
    }

    #[test]
    fn lp_telescoping_sums_to_value() {
        // Σ_{c=1}^{x} (G(c) - G(c-1)) = G(x): the identity behind the
        // framework's correctness (Section 1.2).
        let g = Lp::new(1.7);
        let x = 40u64;
        let sum: f64 = (1..=x).map(|c| g.delta(c)).sum();
        assert!((sum - g.value(x)).abs() < 1e-9);
    }

    #[test]
    fn fg_lower_bounds_are_actual_lower_bounds() {
        // Compare against the two extreme streams of length m: all mass on
        // one item, and all items distinct.
        let m = 1000u64;
        let single = |g: &dyn Fn(u64) -> f64| g(m);
        let spread = |g: &dyn Fn(u64) -> f64| m as f64 * g(1);

        type Case = (f64, Box<dyn Fn(u64) -> f64>);
        let cases: Vec<Case> = vec![
            (
                Lp::new(0.5).fg_lower_bound(m),
                Box::new(|x| Lp::new(0.5).value(x)),
            ),
            (
                Lp::new(2.0).fg_lower_bound(m),
                Box::new(|x| Lp::new(2.0).value(x)),
            ),
            (L1L2.fg_lower_bound(m), Box::new(|x| L1L2.value(x))),
            (
                Fair::new(2.0).fg_lower_bound(m),
                Box::new(|x| Fair::new(2.0).value(x)),
            ),
            (
                Huber::new(2.0).fg_lower_bound(m),
                Box::new(|x| Huber::new(2.0).value(x)),
            ),
            (
                Tukey::new(4.0).fg_lower_bound(m),
                Box::new(|x| Tukey::new(4.0).value(x)),
            ),
            (
                ConcaveLog.fg_lower_bound(m),
                Box::new(|x| ConcaveLog.value(x)),
            ),
            (
                CappedCount::new(10).fg_lower_bound(m),
                Box::new(|x| CappedCount::new(10).value(x)),
            ),
        ];
        for (bound, g) in cases {
            let worst = single(&*g).min(spread(&*g));
            assert!(
                bound <= worst + 1e-9,
                "lower bound {bound} exceeds worst-case F_G {worst}"
            );
        }
    }

    #[test]
    fn huber_branches_agree_at_tau() {
        let g = Huber::new(3.0);
        // At x = τ both branches give τ/2.
        assert!((g.value(3) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tukey_saturates() {
        let g = Tukey::new(4.0);
        assert!((g.value(4) - g.saturation()).abs() < 1e-12);
        assert!((g.value(100) - g.saturation()).abs() < 1e-12);
        assert!(g.value(2) < g.saturation());
    }

    #[test]
    #[should_panic(expected = "p in (0, 2]")]
    fn lp_rejects_invalid_exponent() {
        let _ = Lp::new(3.0);
    }

    #[test]
    #[should_panic(expected = "tau > 0")]
    fn fair_rejects_zero_tau() {
        let _ = Fair::new(0.0);
    }

    #[test]
    fn capped_count_value() {
        let g = CappedCount::new(3);
        assert_eq!(g.value(2), 2.0);
        assert_eq!(g.value(3), 3.0);
        assert_eq!(g.value(10), 3.0);
    }
}
