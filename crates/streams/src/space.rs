//! Space accounting.
//!
//! Every space bound in the paper is stated in bits; the experiments verify
//! the *shape* of those bounds by measuring the actual heap + inline size of
//! each data structure. The [`SpaceUsage`] trait gives every structure in the
//! workspace a uniform way to report that size.

/// A data structure that can report (an estimate of) its memory footprint.
pub trait SpaceUsage {
    /// Total bytes used: the size of `Self` plus owned heap allocations.
    ///
    /// Implementations should count capacity (allocated space), not just
    /// occupied length, since the paper's bounds refer to the memory the
    /// algorithm must reserve.
    fn space_bytes(&self) -> usize;

    /// Space in bits, the unit the paper uses.
    fn space_bits(&self) -> usize {
        self.space_bytes() * 8
    }
}

/// Helper: bytes used by a `Vec`'s heap buffer plus its inline header.
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    std::mem::size_of::<Vec<T>>() + v.capacity() * std::mem::size_of::<T>()
}

/// Helper: approximate bytes used by a `HashMap`, counting one slot per unit
/// of capacity plus per-slot bookkeeping overhead (hashbrown uses one byte of
/// control metadata per slot). Generic over the hasher so the fast-hashed
/// maps of the hot paths ([`crate::fasthash`]) are measured identically.
pub fn hashmap_bytes<K, V, S>(m: &std::collections::HashMap<K, V, S>) -> usize {
    std::mem::size_of::<std::collections::HashMap<K, V, S>>()
        + m.capacity() * (std::mem::size_of::<(K, V)>() + 1)
}

/// Helper: approximate bytes used by a `HashSet`.
pub fn hashset_bytes<K, S>(s: &std::collections::HashSet<K, S>) -> usize {
    std::mem::size_of::<std::collections::HashSet<K, S>>()
        + s.capacity() * (std::mem::size_of::<K>() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    struct Wrapper {
        data: Vec<u64>,
    }

    impl SpaceUsage for Wrapper {
        fn space_bytes(&self) -> usize {
            vec_bytes(&self.data)
        }
    }

    #[test]
    fn vec_bytes_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(100);
        v.push(1);
        assert!(vec_bytes(&v) >= 100 * 8);
    }

    #[test]
    fn space_bits_is_eight_times_bytes() {
        let w = Wrapper { data: vec![0; 10] };
        assert_eq!(w.space_bits(), w.space_bytes() * 8);
    }

    #[test]
    fn hashmap_and_hashset_bytes_grow_with_capacity() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut s: HashSet<u64> = HashSet::new();
        let empty_m = hashmap_bytes(&m);
        let empty_s = hashset_bytes(&s);
        for i in 0..1000 {
            m.insert(i, i);
            s.insert(i);
        }
        assert!(hashmap_bytes(&m) > empty_m + 1000 * 16);
        assert!(hashset_bytes(&s) > empty_s + 1000 * 8);
    }
}
