//! The unified typed query surface shared by every query entry point.
//!
//! The paper's headline property is that a truly perfect sample is
//! available *at any query point*; this module types what "query point"
//! means so all three front doors — `ShardedSampler::query()` in-process,
//! the service's `QueryClient`, and the `tps-service query` subcommand —
//! speak the same vocabulary:
//!
//! * [`QueryConsistency`] picks between the two service levels. A
//!   **consistent** query forces a fresh cut (an epoch barrier in the
//!   service, a fold-merge in-process) and is byte-identical to the
//!   reference merge at that cut. A **cached** query is answered from the
//!   last published cut when that cut is at most `max_epochs_stale`
//!   epochs behind the live barrier — no barrier, no merge, no waiting on
//!   ingest.
//! * [`QueryOptions`] is the request: just the consistency level today,
//!   but a struct so future knobs ride the same surface.
//! * [`QuerySnapshot`] is the reply envelope: the answer plus the cut it
//!   was drawn at (`epoch`, `cut`) and whether a cache served it.
//!
//! Staleness is measured in **epochs** (barrier generations), not wall
//! time: `Cached { max_epochs_stale: 0 }` accepts only the cut of the
//! *current* epoch, `1` tolerates one barrier of lag, and so on. A server
//! whose newest published cut is staler than the bound escalates to the
//! consistent path rather than answering stale — cached mode bounds
//! staleness, it never violates it.

/// How fresh a query's answer must be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryConsistency {
    /// Force a fresh consistent cut: an epoch barrier across all shards
    /// (service) or a fresh fold-merge (in-process). Byte-identical to
    /// the reference merge at the cut. This is the default.
    #[default]
    Consistent,
    /// Serve from the last published cut if it is at most
    /// `max_epochs_stale` epochs behind the live barrier; escalate to the
    /// consistent path otherwise.
    Cached {
        /// Maximum tolerated lag, in epochs, between the live barrier and
        /// the cut that answers the query. `0` = only the current
        /// epoch's cut.
        max_epochs_stale: u64,
    },
}

/// A typed query request: what every query front door accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryOptions {
    /// The consistency level ([`QueryConsistency::Consistent`] by
    /// default).
    pub consistency: QueryConsistency,
}

impl QueryOptions {
    /// A consistent-cut query (the default).
    pub fn consistent() -> Self {
        QueryOptions {
            consistency: QueryConsistency::Consistent,
        }
    }

    /// A cached query tolerating at most `max_epochs_stale` epochs of lag.
    pub fn cached(max_epochs_stale: u64) -> Self {
        QueryOptions {
            consistency: QueryConsistency::Cached { max_epochs_stale },
        }
    }

    /// The staleness bound, if this is a cached query.
    pub fn max_epochs_stale(&self) -> Option<u64> {
        match self.consistency {
            QueryConsistency::Consistent => None,
            QueryConsistency::Cached { max_epochs_stale } => Some(max_epochs_stale),
        }
    }
}

/// A query answer pinned to the cut it was drawn at.
///
/// `T` is whatever the front door answers with: the service replies with
/// its merged `QueryReport`, `ShardedSampler::query()` with the merged
/// sampler itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySnapshot<T> {
    /// The answer, drawn at the cut below.
    pub value: T,
    /// The barrier epoch of the cut that produced the answer.
    pub epoch: u64,
    /// The cut position: chunks routed at the barrier (service) or
    /// updates routed (in-process).
    pub cut: u64,
    /// Whether a published cache served the answer (`true`) or a fresh
    /// consistent cut was forced (`false`).
    pub cached: bool,
}

impl<T> QuerySnapshot<T> {
    /// Maps the answer, keeping the cut metadata.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> QuerySnapshot<U> {
        QuerySnapshot {
            value: f(self.value),
            epoch: self.epoch,
            cut: self.cut,
            cached: self.cached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        assert_eq!(
            QueryOptions::default().consistency,
            QueryConsistency::Consistent
        );
        assert_eq!(QueryOptions::consistent(), QueryOptions::default());
        assert_eq!(QueryOptions::default().max_epochs_stale(), None);
    }

    #[test]
    fn cached_carries_its_staleness_bound() {
        let opts = QueryOptions::cached(3);
        assert_eq!(
            opts.consistency,
            QueryConsistency::Cached {
                max_epochs_stale: 3
            }
        );
        assert_eq!(opts.max_epochs_stale(), Some(3));
    }

    #[test]
    fn snapshot_map_keeps_the_cut() {
        let snap = QuerySnapshot {
            value: 21u64,
            epoch: 4,
            cut: 12,
            cached: true,
        };
        let doubled = snap.map(|v| v * 2);
        assert_eq!(doubled.value, 42);
        assert_eq!((doubled.epoch, doubled.cut, doubled.cached), (4, 12, true));
    }
}
