//! The snapshot wire format: serde-free, versioned, checksummed binary
//! checkpoints for every sampler and sketch in the workspace.
//!
//! PR 3 made the samplers mergeable, but shards could only merge inside one
//! process because no state could leave memory. This module is the missing
//! piece of the scale-out story: a sampler's entire state — reservoir
//! slots, skip-ahead schedule, suffix-count table, *exact RNG position* —
//! is written as a compact, self-describing byte artifact that a different
//! process (or machine, or future binary) can restore and keep ingesting
//! from, byte-for-byte as if the stream had never stopped.
//!
//! ## Layout
//!
//! Every sealed snapshot is:
//!
//! ```text
//! magic      4 bytes   b"TPSS"
//! version    u16 LE    FORMAT_VERSION (decoding any other version fails)
//! tag        u16 LE    component tag of the top-level component
//! length     u64 LE    payload length in bytes
//! payload    length bytes
//! checksum   u64 LE    FNV-1a 64 over everything before this field
//! ```
//!
//! The payload is a flat little-endian field sequence. Composite components
//! nest by writing their own tag first ([`Snapshot::encode_into`]), so a
//! decoder that drifts out of sync fails fast on a tag mismatch instead of
//! misinterpreting bytes. Hash maps are always encoded **sorted by key**,
//! heaps sorted by element: a snapshot is a *canonical* function of the
//! logical state, so `snapshot(restore(snapshot(x)).continue(s)) ==
//! snapshot(x.continue(s))` can be asserted byte for byte (the round-trip
//! law `tests/snapshot_roundtrip.rs` enforces for every type).
//!
//! ## Versioning policy
//!
//! [`FORMAT_VERSION`] covers the whole format: any change to any
//! component's encoding bumps it, and decoders accept exactly the current
//! version (checkpoints are short-lived operational artifacts, not
//! archives; cross-version migration is a conversion step, not a decoder
//! obligation). The committed golden corpus under `tests/golden/snapshots/`
//! plus the `snapshot-compat` CI job turn any accidental encoding change
//! into a hard failure: either the corpus decodes and re-encodes to the
//! exact committed bytes, or the PR must bump the version and regenerate
//! the corpus explicitly.
//!
//! ## Hardening
//!
//! Decoding untrusted bytes must return a typed [`CodecError`] — never
//! panic, never allocate unbounded memory. [`SnapshotReader::get_len`]
//! validates every length field against the bytes actually remaining
//! before any allocation, and restored values are range-checked before
//! they reach constructors that assert.

pub mod delta;
pub mod migrate;

use crate::measure::{CappedCount, ConcaveLog, Fair, Huber, Lp, Tukey, L1L2};
use tps_random::{KWiseHash, Xoshiro256, MERSENNE_61};

/// The four magic bytes opening every sealed snapshot.
pub const MAGIC: [u8; 4] = *b"TPSS";

/// The current snapshot format version. Bump on **any** encoding change
/// (see the module docs for the policy) and regenerate the golden corpus.
///
/// **Version history:**
///
/// * `1` — the PR 4 launch format.
/// * `2` — the sharded-sampler payload gained its ingest configuration
///   (backpressure policy, parallel cutoff, runtime chunk length) so a
///   restored front-end keeps the policy it was built with, and the
///   [`delta`] incremental-checkpoint frame kind was introduced. Old
///   version-1 snapshots convert losslessly through
///   [`migrate::upgrade_to_current`].
pub const FORMAT_VERSION: u16 = 2;

/// Component tags: every snapshottable type owns one, written both in the
/// sealed header and at the start of the component's own field sequence.
pub mod tag {
    /// `tps_random::Xoshiro256` (the exact 256-bit RNG position).
    pub const XOSHIRO256: u16 = 0x0001;
    /// `tps_random::KWiseHash` (polynomial coefficients).
    pub const KWISE_HASH: u16 = 0x0002;
    /// `tps_streams::Lp`.
    pub const MEASURE_LP: u16 = 0x0010;
    /// `tps_streams::L1L2`.
    pub const MEASURE_L1L2: u16 = 0x0011;
    /// `tps_streams::Fair`.
    pub const MEASURE_FAIR: u16 = 0x0012;
    /// `tps_streams::Huber`.
    pub const MEASURE_HUBER: u16 = 0x0013;
    /// `tps_streams::Tukey`.
    pub const MEASURE_TUKEY: u16 = 0x0014;
    /// `tps_streams::ConcaveLog`.
    pub const MEASURE_CONCAVE_LOG: u16 = 0x0015;
    /// `tps_streams::CappedCount`.
    pub const MEASURE_CAPPED_COUNT: u16 = 0x0016;
    /// `tps_sketches::exact_counter::SuffixCountTable`.
    pub const SUFFIX_COUNT_TABLE: u16 = 0x0020;
    /// `tps_sketches::MisraGries`.
    pub const MISRA_GRIES: u16 = 0x0021;
    /// `tps_sketches::SpaceSaving`.
    pub const SPACE_SAVING: u16 = 0x0022;
    /// `tps_sketches::CountMin`.
    pub const COUNT_MIN: u16 = 0x0023;
    /// `tps_sketches::CountSketch`.
    pub const COUNT_SKETCH: u16 = 0x0024;
    /// `tps_sketches::AmsFpEstimator`.
    pub const AMS_FP_ESTIMATOR: u16 = 0x0025;
    /// `tps_sketches::SparseRecovery` (Reed–Solomon syndrome vector).
    pub const SPARSE_RECOVERY: u16 = 0x0026;
    /// `tps_core::engine::SkipAheadEngine`.
    pub const SKIP_AHEAD_ENGINE: u16 = 0x0030;
    /// `tps_core::framework::MeasureNormalizer`.
    pub const MEASURE_NORMALIZER: u16 = 0x0031;
    /// `tps_core::framework::MisraGriesNormalizer`.
    pub const MISRA_GRIES_NORMALIZER: u16 = 0x0032;
    /// `tps_core::framework::TrulyPerfectGSampler`.
    pub const G_SAMPLER: u16 = 0x0033;
    /// `tps_core::lp::TrulyPerfectLpSampler`.
    pub const LP_SAMPLER: u16 = 0x0034;
    /// `tps_core::f0::TrulyPerfectF0Sampler`.
    pub const F0_SAMPLER: u16 = 0x0035;
    /// `tps_core::f0::SlidingWindowF0Sampler`.
    pub const SLIDING_F0_SAMPLER: u16 = 0x0036;
    /// The cohort manager shared by the sliding-window samplers.
    pub const COHORT_MANAGER: u16 = 0x0037;
    /// `tps_core::sliding::SlidingWindowGSampler`.
    pub const SLIDING_G_SAMPLER: u16 = 0x0038;
    /// `tps_core::sliding::SlidingWindowLpSampler`.
    pub const SLIDING_LP_SAMPLER: u16 = 0x0039;
    /// `tps_core::sharded::ShardedSampler` (per-shard snapshots + router).
    pub const SHARDED_SAMPLER: u16 = 0x003A;
    /// `tps_core::turnstile::StrictTurnstileF0Sampler`.
    pub const TURNSTILE_F0_SAMPLER: u16 = 0x003B;
    /// `tps_window::SmoothHistogram`.
    pub const SMOOTH_HISTOGRAM: u16 = 0x0040;
    /// The AMS-estimator factory inside `tps_window::estimate`.
    pub const LP_FACTORY: u16 = 0x0041;
    /// `tps_window::SlidingWindowLpEstimate`.
    pub const SLIDING_LP_ESTIMATE: u16 = 0x0042;
    /// An incremental checkpoint frame ([`super::delta`]): either a full
    /// snapshot stamped with its checkpoint epoch, or a byte delta against
    /// the previous frame in the chain. Not a standalone component.
    pub const CHECKPOINT_FRAME: u16 = 0x0050;
    /// A coordinator↔worker control message ([`crate::wire`]). Transient —
    /// never written to disk, so it has no golden corpus entry; it reuses
    /// the sealed envelope purely for the header/checksum hardening.
    pub const WIRE_MESSAGE: u16 = 0x0060;
    /// A coordinator job manifest (`tps-service`): the job spec plus the
    /// coordinator's durable routing position and per-shard replay
    /// buffers, appended to the coordinator's checkpoint chain before
    /// every barrier so a killed coordinator resumes byte-exactly.
    pub const JOB_MANIFEST: u16 = 0x0061;
}

/// Why a snapshot failed to decode. Every decode failure is one of these —
/// decoding never panics and never allocates past the input length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a field (or the declared payload) was read.
    Truncated {
        /// Bytes the decoder needed next.
        needed: u64,
        /// Bytes actually remaining.
        remaining: u64,
    },
    /// The input does not open with the `TPSS` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The snapshot was written by a different format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
        /// The version this decoder supports.
        supported: u16,
    },
    /// A component tag did not match the type being restored.
    TagMismatch {
        /// The tag the decoder expected.
        expected: u16,
        /// The tag found in the input.
        found: u16,
    },
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// The checksum stored in the snapshot.
        stored: u64,
        /// The checksum recomputed over the received bytes.
        computed: u64,
    },
    /// Bytes remained after the component was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        count: u64,
    },
    /// A decoded field failed semantic validation (out-of-range parameter,
    /// broken structural invariant).
    InvalidValue {
        /// What was wrong, for diagnostics.
        what: &'static str,
    },
    /// A delta frame does not apply to the base snapshot at hand: its
    /// recorded base epoch or base checksum disagrees with the bytes the
    /// replayer reconstructed so far (a gap or reordering in the
    /// checkpoint chain).
    StaleBase {
        /// The base epoch the frame was encoded against.
        base_epoch: u64,
        /// The epoch of the base actually available.
        found_epoch: u64,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated snapshot: needed {needed} bytes, {remaining} remaining"
                )
            }
            CodecError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            CodecError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads {supported})"
                )
            }
            CodecError::TagMismatch { expected, found } => {
                write!(
                    f,
                    "component tag mismatch: expected {expected:#06x}, found {found:#06x}"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            CodecError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the component")
            }
            CodecError::InvalidValue { what } => write!(f, "invalid value: {what}"),
            CodecError::StaleBase {
                base_epoch,
                found_epoch,
            } => {
                write!(
                    f,
                    "delta frame encoded against base epoch {base_epoch}, \
                     but epoch {found_epoch} is what is available"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64 over a byte slice — the snapshot integrity checksum (integrity
/// against truncation and bit rot, not an authenticity mechanism).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// An append-only little-endian field writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of the
    /// host's pointer width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a component tag (structural marker for nested components).
    pub fn put_tag(&mut self, tag: u16) {
        self.put_u16(tag);
    }

    /// Appends a collection length (as `u64`).
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }
}

/// A bounds-checked little-endian field reader over a snapshot payload.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Creates a reader over a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n as u64,
                remaining: self.remaining() as u64,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` and checks it fits the host's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?).map_err(|_| CodecError::InvalidValue {
            what: "value exceeds the host usize",
        })
    }

    /// Reads `n` raw bytes into an owned buffer. The length is validated
    /// against the bytes actually remaining before the allocation.
    pub fn get_bytes(&mut self, n: usize) -> Result<Vec<u8>, CodecError> {
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a component tag and checks it against the expected one.
    pub fn expect_tag(&mut self, expected: u16) -> Result<(), CodecError> {
        let found = self.get_u16()?;
        if found != expected {
            return Err(CodecError::TagMismatch { expected, found });
        }
        Ok(())
    }

    /// Reads a collection length and validates it **before any allocation**:
    /// a collection of `len` elements each occupying at least
    /// `min_elem_bytes` in the payload must fit in the bytes remaining, so a
    /// corrupt length field fails here instead of in `Vec::with_capacity`.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.get_u64()?;
        let floor = len
            .checked_mul(min_elem_bytes.max(1) as u64)
            .ok_or(CodecError::Truncated {
                needed: u64::MAX,
                remaining: self.remaining() as u64,
            })?;
        if floor > self.remaining() as u64 {
            return Err(CodecError::Truncated {
                needed: floor,
                remaining: self.remaining() as u64,
            });
        }
        usize::try_from(len).map_err(|_| CodecError::InvalidValue {
            what: "collection length exceeds the host usize",
        })
    }

    /// Validates a two-dimensional collection size — `rows × cols` elements
    /// of at least `min_elem_bytes` each — against the bytes remaining,
    /// **before any allocation** (the 2-D analogue of
    /// [`SnapshotReader::get_len`], for grid-shaped components whose cell
    /// count is implied by separately decoded dimensions). Returns the cell
    /// count.
    pub fn check_grid(
        &self,
        rows: usize,
        cols: usize,
        min_elem_bytes: usize,
    ) -> Result<usize, CodecError> {
        let cells = (rows as u64).checked_mul(cols as u64);
        let floor = cells.and_then(|c| c.checked_mul(min_elem_bytes.max(1) as u64));
        match (cells, floor) {
            (Some(cells), Some(floor)) if floor <= self.remaining() as u64 => {
                usize::try_from(cells).map_err(|_| CodecError::InvalidValue {
                    what: "grid cell count exceeds the host usize",
                })
            }
            _ => Err(CodecError::Truncated {
                needed: floor.unwrap_or(u64::MAX),
                remaining: self.remaining() as u64,
            }),
        }
    }

    /// Fails with [`CodecError::TrailingBytes`] unless the payload was
    /// consumed exactly.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                count: self.remaining() as u64,
            });
        }
        Ok(())
    }
}

/// Wraps a component payload in the sealed envelope (magic, version, tag,
/// length, checksum).
pub fn seal(component_tag: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 + 2 + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&component_tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let digest = checksum(&out);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Validates a sealed envelope (magic, version, tag, declared length,
/// checksum) and returns the payload slice.
pub fn unseal(expected_tag: u16, bytes: &[u8]) -> Result<&[u8], CodecError> {
    unseal_at_version(expected_tag, bytes, FORMAT_VERSION)
}

/// [`unseal`] pinned to a specific (possibly historical) format version —
/// the entry point the [`migrate`] module decodes old envelopes through.
/// Regular decoders go through [`unseal`], which accepts exactly
/// [`FORMAT_VERSION`].
pub(crate) fn unseal_at_version(
    expected_tag: u16,
    bytes: &[u8],
    accept_version: u16,
) -> Result<&[u8], CodecError> {
    const HEADER: usize = 4 + 2 + 2 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(CodecError::Truncated {
            needed: (HEADER + 8) as u64,
            remaining: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(CodecError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != accept_version {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: accept_version,
        });
    }
    let found_tag = u16::from_le_bytes([bytes[6], bytes[7]]);
    if found_tag != expected_tag {
        return Err(CodecError::TagMismatch {
            expected: expected_tag,
            found: found_tag,
        });
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let actual = (bytes.len() - HEADER - 8) as u64;
    if actual < declared {
        return Err(CodecError::Truncated {
            needed: declared,
            remaining: actual,
        });
    }
    if actual > declared {
        return Err(CodecError::TrailingBytes {
            count: actual - declared,
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8-byte slice"));
    let computed = checksum(&bytes[..body_end]);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(&bytes[HEADER..body_end])
}

/// The version stored in a sealed snapshot's header, without decoding the
/// payload (used by the compat gate to detect silent re-versioning).
pub fn peek_version(bytes: &[u8]) -> Result<u16, CodecError> {
    if bytes.len() < 6 {
        return Err(CodecError::Truncated {
            needed: 6,
            remaining: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(CodecError::BadMagic { found: magic });
    }
    Ok(u16::from_le_bytes([bytes[4], bytes[5]]))
}

/// The component tag stored in a sealed snapshot's header, without decoding
/// the payload (used by the migrator to pick a payload transformation).
pub fn peek_tag(bytes: &[u8]) -> Result<u16, CodecError> {
    if bytes.len() < 8 {
        return Err(CodecError::Truncated {
            needed: 8,
            remaining: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(CodecError::BadMagic { found: magic });
    }
    Ok(u16::from_le_bytes([bytes[6], bytes[7]]))
}

/// A component that can write its complete logical state into the snapshot
/// format.
///
/// The contract (enforced by `tests/snapshot_roundtrip.rs` for every
/// implementation):
///
/// * **Canonical**: the bytes are a pure function of the logical state —
///   unordered containers are written sorted, transient buffers omitted.
/// * **Complete**: restoring and continuing to ingest is byte-identical
///   (samples, estimates, *and RNG position*) to never having stopped.
pub trait Snapshot {
    /// The component tag identifying this type on the wire.
    const TAG: u16;

    /// Writes the component (its tag first, then its fields) into `w`.
    /// Composite components nest by calling their children's `encode_into`.
    fn encode_into(&self, w: &mut SnapshotWriter);

    /// The sealed snapshot: header, payload, checksum.
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.encode_into(&mut w);
        seal(Self::TAG, &w.into_bytes())
    }
}

/// A component that can be rebuilt from its snapshot.
pub trait Restore: Snapshot + Sized {
    /// Reads the component (expecting its tag first) from `r`.
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError>;

    /// Restores from a sealed snapshot produced by [`Snapshot::snapshot`].
    fn restore(bytes: &[u8]) -> Result<Self, CodecError> {
        let payload = unseal(Self::TAG, bytes)?;
        let mut r = SnapshotReader::new(payload);
        let value = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

/// Writes `(key, value)` pairs sorted by key — the canonical form for hash
/// maps, whose iteration order is not part of the logical state.
pub fn put_sorted_u64_pairs(w: &mut SnapshotWriter, pairs: impl Iterator<Item = (u64, u64)>) {
    let mut v: Vec<(u64, u64)> = pairs.collect();
    v.sort_unstable_by_key(|&(k, _)| k);
    w.put_len(v.len());
    for (k, value) in v {
        w.put_u64(k);
        w.put_u64(value);
    }
}

/// Reads pairs written by [`put_sorted_u64_pairs`], enforcing strictly
/// ascending keys (duplicate or unsorted keys mean a corrupt or
/// non-canonical snapshot).
pub fn get_sorted_u64_pairs(r: &mut SnapshotReader<'_>) -> Result<Vec<(u64, u64)>, CodecError> {
    let len = r.get_len(16)?;
    let mut out = Vec::with_capacity(len);
    let mut prev: Option<u64> = None;
    for _ in 0..len {
        let key = r.get_u64()?;
        if prev.is_some_and(|p| p >= key) {
            return Err(CodecError::InvalidValue {
                what: "map keys not strictly ascending",
            });
        }
        prev = Some(key);
        out.push((key, r.get_u64()?));
    }
    Ok(out)
}

/// Writes a set of `u64` values sorted ascending (canonical form).
pub fn put_sorted_u64_set(w: &mut SnapshotWriter, values: impl Iterator<Item = u64>) {
    let mut v: Vec<u64> = values.collect();
    v.sort_unstable();
    w.put_len(v.len());
    for value in v {
        w.put_u64(value);
    }
}

/// Reads a set written by [`put_sorted_u64_set`], enforcing strictly
/// ascending values.
pub fn get_sorted_u64_set(r: &mut SnapshotReader<'_>) -> Result<Vec<u64>, CodecError> {
    let len = r.get_len(8)?;
    let mut out = Vec::with_capacity(len);
    let mut prev: Option<u64> = None;
    for _ in 0..len {
        let value = r.get_u64()?;
        if prev.is_some_and(|p| p >= value) {
            return Err(CodecError::InvalidValue {
                what: "set values not strictly ascending",
            });
        }
        prev = Some(value);
        out.push(value);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Randomness substrate (tps-random types; the trait lives here, so the
// impls do too).
// ---------------------------------------------------------------------------

impl Snapshot for Xoshiro256 {
    const TAG: u16 = tag::XOSHIRO256;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        for word in self.state() {
            w.put_u64(word);
        }
    }
}

impl Restore for Xoshiro256 {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        if s.iter().all(|&w| w == 0) {
            return Err(CodecError::InvalidValue {
                what: "all-zero xoshiro state",
            });
        }
        Ok(Xoshiro256::from_state(s))
    }
}

impl Snapshot for KWiseHash {
    const TAG: u16 = tag::KWISE_HASH;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_len(self.coefficients().len());
        for &c in self.coefficients() {
            w.put_u64(c);
        }
    }
}

impl Restore for KWiseHash {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let len = r.get_len(8)?;
        if len == 0 {
            return Err(CodecError::InvalidValue {
                what: "k-wise hash needs at least one coefficient",
            });
        }
        let mut coefficients = Vec::with_capacity(len);
        for _ in 0..len {
            let c = r.get_u64()?;
            if c >= MERSENNE_61 {
                return Err(CodecError::InvalidValue {
                    what: "k-wise hash coefficient outside the Mersenne field",
                });
            }
            coefficients.push(c);
        }
        Ok(KWiseHash::from_coefficients(coefficients))
    }
}

// ---------------------------------------------------------------------------
// Measure functions (a sampler's G travels with its state so a restored
// sampler cannot silently change target distribution).
// ---------------------------------------------------------------------------

impl Snapshot for Lp {
    const TAG: u16 = tag::MEASURE_LP;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.p());
    }
}

impl Restore for Lp {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let p = r.get_f64()?;
        if !(p > 0.0 && p <= 2.0) {
            return Err(CodecError::InvalidValue {
                what: "Lp exponent outside (0, 2]",
            });
        }
        Ok(Lp::new(p))
    }
}

impl Snapshot for L1L2 {
    const TAG: u16 = tag::MEASURE_L1L2;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
    }
}

impl Restore for L1L2 {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(L1L2)
    }
}

impl Snapshot for ConcaveLog {
    const TAG: u16 = tag::MEASURE_CONCAVE_LOG;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
    }
}

impl Restore for ConcaveLog {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(ConcaveLog)
    }
}

/// Encodes the shared `{ tau }` shape of the Fair / Huber / Tukey
/// M-estimators.
fn decode_tau(r: &mut SnapshotReader<'_>) -> Result<f64, CodecError> {
    let tau = r.get_f64()?;
    if !(tau > 0.0 && tau.is_finite()) {
        return Err(CodecError::InvalidValue {
            what: "M-estimator tau must be positive and finite",
        });
    }
    Ok(tau)
}

impl Snapshot for Fair {
    const TAG: u16 = tag::MEASURE_FAIR;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.tau());
    }
}

impl Restore for Fair {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(Fair::new(decode_tau(r)?))
    }
}

impl Snapshot for Huber {
    const TAG: u16 = tag::MEASURE_HUBER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.tau());
    }
}

impl Restore for Huber {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(Huber::new(decode_tau(r)?))
    }
}

impl Snapshot for Tukey {
    const TAG: u16 = tag::MEASURE_TUKEY;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.tau());
    }
}

impl Restore for Tukey {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(Tukey::new(decode_tau(r)?))
    }
}

impl Snapshot for CappedCount {
    const TAG: u16 = tag::MEASURE_CAPPED_COUNT;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u64(self.cap());
    }
}

impl Restore for CappedCount {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let cap = r.get_u64()?;
        if cap == 0 {
            return Err(CodecError::InvalidValue {
                what: "capped-count cap must be positive",
            });
        }
        Ok(CappedCount::new(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::StreamRng;

    #[test]
    fn rng_snapshot_preserves_exact_position() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            rng.next_u64();
        }
        let bytes = rng.snapshot();
        let mut restored = Xoshiro256::restore(&bytes).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn sealed_envelope_rejects_typed_corruptions() {
        let rng = Xoshiro256::seed_from_u64(1);
        let good = rng.snapshot();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Xoshiro256::restore(&bad),
            Err(CodecError::BadMagic { .. })
        ));
        // Future version (checksum fixed up so the version check is what
        // fires).
        let mut future = good.clone();
        future[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let end = future.len() - 8;
        let digest = checksum(&future[..end]);
        future[end..].copy_from_slice(&digest.to_le_bytes());
        assert_eq!(
            Xoshiro256::restore(&future),
            Err(CodecError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            })
        );
        // Wrong component.
        assert!(matches!(
            KWiseHash::restore(&good),
            Err(CodecError::TagMismatch { .. })
        ));
        // Flipped payload bit.
        let mut flipped = good.clone();
        flipped[20] ^= 0x10;
        assert!(matches!(
            Xoshiro256::restore(&flipped),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        // Every truncation fails without panicking.
        for cut in 0..good.len() {
            assert!(Xoshiro256::restore(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn length_fields_are_validated_before_allocation() {
        // A payload claiming u64::MAX coefficients must fail fast on the
        // length check, not attempt the allocation.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::KWISE_HASH);
        w.put_u64(u64::MAX);
        let bytes = seal(tag::KWISE_HASH, &w.into_bytes());
        assert!(matches!(
            KWiseHash::restore(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn measures_round_trip() {
        let bytes = Lp::new(1.5).snapshot();
        assert_eq!(Lp::restore(&bytes).unwrap().p(), 1.5);
        let bytes = Huber::new(2.5).snapshot();
        assert_eq!(Huber::restore(&bytes).unwrap().tau(), 2.5);
        let bytes = Fair::new(0.5).snapshot();
        assert_eq!(Fair::restore(&bytes).unwrap().tau(), 0.5);
        let bytes = Tukey::new(4.0).snapshot();
        assert_eq!(Tukey::restore(&bytes).unwrap().tau(), 4.0);
        let bytes = CappedCount::new(9).snapshot();
        assert_eq!(CappedCount::restore(&bytes).unwrap().cap(), 9);
        assert!(L1L2::restore(&L1L2.snapshot()).is_ok());
        assert!(ConcaveLog::restore(&ConcaveLog.snapshot()).is_ok());
        // Out-of-range parameters come back as typed errors, not panics.
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::MEASURE_LP);
        w.put_f64(3.5);
        assert!(matches!(
            Lp::restore(&seal(tag::MEASURE_LP, &w.into_bytes())),
            Err(CodecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn kwise_hash_round_trips_exactly() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let h = KWiseHash::new(&mut rng, 4);
        let restored = KWiseHash::restore(&h.snapshot()).unwrap();
        for key in 0..256u64 {
            assert_eq!(h.hash(key), restored.hash(key));
        }
    }

    #[test]
    fn peek_version_reads_the_header() {
        let bytes = L1L2.snapshot();
        assert_eq!(peek_version(&bytes), Ok(FORMAT_VERSION));
        assert!(peek_version(&bytes[..3]).is_err());
    }
}
