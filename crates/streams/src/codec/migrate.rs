//! Cross-version snapshot migration: the conversion step the versioning
//! policy promises.
//!
//! Decoders accept exactly [`FORMAT_VERSION`](super::FORMAT_VERSION) —
//! checkpoints are operational artifacts, and keeping every decoder
//! multi-version forever would turn each of them into a museum. Instead,
//! an old snapshot passes through this module **once**, coming out as a
//! byte-valid current-version snapshot, and everything downstream (the
//! restore path, the compat gate, the delta checkpointer) only ever sees
//! the current format.
//!
//! ## v1 → v2
//!
//! Version 2 made exactly one payload change: the sharded-sampler record
//! ([`tag::SHARDED_SAMPLER`]) now carries its ingest configuration —
//! backpressure policy, parallel cutoff, runtime chunk length — directly
//! after the strategy byte, so a restored front-end keeps the policy it
//! was built with instead of silently reverting to defaults. Every other
//! component's payload is bit-identical across the two versions, so its
//! migration is a header rewrite (new version stamp, recomputed checksum).
//!
//! A v1 sharded snapshot predates the configuration fields, so the
//! migrator splices in **the values a v1 decoder restored with**. These
//! constants are frozen historical facts: they must never track future
//! default changes, or migrating the same v1 artifact twice would produce
//! different states.

use super::{peek_tag, peek_version, seal, tag, unseal_at_version, CodecError, FORMAT_VERSION};

/// The backpressure policy every v1 sharded snapshot restored with
/// (`Backpressure::Block`, wire value 0).
pub const V1_SHARDED_BACKPRESSURE: u8 = 0;

/// The per-shard parallel cutoff every v1 sharded snapshot restored with.
pub const V1_SHARDED_PARALLEL_CUTOFF: u64 = 4_096;

/// The runtime chunk length every v1 sharded snapshot restored with.
pub const V1_SHARDED_CHUNK_LEN: u64 = 32 * 1024;

/// Converts a sealed snapshot of any supported version into a byte-valid
/// [`FORMAT_VERSION`](super::FORMAT_VERSION) snapshot. Current-version
/// input is envelope-validated and returned as-is; v1 input is migrated;
/// anything else fails with the usual typed
/// [`CodecError::UnsupportedVersion`].
pub fn upgrade_to_current(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    match peek_version(bytes)? {
        FORMAT_VERSION => {
            let component = peek_tag(bytes)?;
            unseal_at_version(component, bytes, FORMAT_VERSION)?;
            Ok(bytes.to_vec())
        }
        1 => migrate_v1_to_v2(bytes),
        found => Err(CodecError::UnsupportedVersion {
            found,
            supported: FORMAT_VERSION,
        }),
    }
}

/// Converts a sealed version-1 snapshot into a sealed version-2 snapshot
/// (see the module docs for what changes). The input envelope is fully
/// validated — magic, version, declared length, checksum — before any
/// payload is touched.
pub fn migrate_v1_to_v2(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let component = peek_tag(bytes)?;
    let payload = unseal_at_version(component, bytes, 1)?;
    let payload = match component {
        tag::SHARDED_SAMPLER => migrate_sharded_payload_v1(payload)?,
        tag::CHECKPOINT_FRAME => {
            return Err(CodecError::InvalidValue {
                what: "checkpoint frames did not exist in format version 1",
            })
        }
        _ => payload.to_vec(),
    };
    Ok(seal(component, &payload))
}

/// Splices the v2 ingest-configuration fields (with their frozen v1
/// defaults) into a v1 sharded payload.
///
/// ```text
/// v1: tag u16 | strategy u8 | cursor u64 | ...
/// v2: tag u16 | strategy u8 | backpressure u8 | cutoff u64 | chunk u64 | cursor u64 | ...
/// ```
fn migrate_sharded_payload_v1(payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    const PREFIX: usize = 2 + 1; // component tag + strategy byte
    if payload.len() < PREFIX {
        return Err(CodecError::Truncated {
            needed: PREFIX as u64,
            remaining: payload.len() as u64,
        });
    }
    let mut out = Vec::with_capacity(payload.len() + 1 + 8 + 8);
    out.extend_from_slice(&payload[..PREFIX]);
    out.push(V1_SHARDED_BACKPRESSURE);
    out.extend_from_slice(&V1_SHARDED_PARALLEL_CUTOFF.to_le_bytes());
    out.extend_from_slice(&V1_SHARDED_CHUNK_LEN.to_le_bytes());
    out.extend_from_slice(&payload[PREFIX..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{checksum, peek_version, Restore, Snapshot};
    use tps_random::{StreamRng, Xoshiro256};

    /// Rewrites a current-version envelope as version 1 (payload
    /// unchanged, checksum fixed up) — valid for components whose payload
    /// encoding did not change between the versions.
    fn downgrade_header_to_v1(mut bytes: Vec<u8>) -> Vec<u8> {
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        let end = bytes.len() - 8;
        let digest = checksum(&bytes[..end]);
        bytes[end..].copy_from_slice(&digest.to_le_bytes());
        bytes
    }

    #[test]
    fn unchanged_component_migrates_by_header_rewrite() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10 {
            rng.next_u64();
        }
        let v2 = rng.snapshot();
        let v1 = downgrade_header_to_v1(v2.clone());
        assert_eq!(peek_version(&v1), Ok(1));
        // The v1 bytes no longer restore directly...
        assert!(matches!(
            Xoshiro256::restore(&v1),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        // ...but migrate to exactly the current-version bytes.
        assert_eq!(migrate_v1_to_v2(&v1).unwrap(), v2);
        assert_eq!(upgrade_to_current(&v1).unwrap(), v2);
        // Current-version input passes through untouched.
        assert_eq!(upgrade_to_current(&v2).unwrap(), v2);
    }

    #[test]
    fn corrupt_or_future_input_fails_typed() {
        let v2 = Xoshiro256::seed_from_u64(1).snapshot();
        let v1 = downgrade_header_to_v1(v2.clone());
        // Bit flip inside a v1 envelope: the checksum catches it during
        // migration, not after.
        let mut flipped = v1.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            migrate_v1_to_v2(&flipped),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        // Truncation fails typed at every cut.
        for cut in 0..v1.len() {
            assert!(upgrade_to_current(&v1[..cut]).is_err(), "cut {cut}");
        }
        // A version that never existed is unsupported, not misconverted.
        let mut v9 = v2.clone();
        v9[4..6].copy_from_slice(&9u16.to_le_bytes());
        let end = v9.len() - 8;
        let digest = checksum(&v9[..end]);
        v9[end..].copy_from_slice(&digest.to_le_bytes());
        assert_eq!(
            upgrade_to_current(&v9),
            Err(CodecError::UnsupportedVersion {
                found: 9,
                supported: FORMAT_VERSION,
            })
        );
    }
}
