//! Incremental (delta) checkpoints: epoch-stamped frames that ship only
//! what changed since the previous checkpoint.
//!
//! A long-running ingest service checkpoints each shard every few seconds.
//! Re-writing the full snapshot each interval is wasteful in exactly the
//! regime the service is built for: a hot shard's state is dominated by its
//! suffix-count table, and between two nearby checkpoints only the counts
//! of the recently-touched items (plus the RNG position and a handful of
//! reservoir slots) actually differ. This module adds a second frame kind
//! on top of the PR-4 snapshot format:
//!
//! * a **full frame** embeds a complete sealed component snapshot, stamped
//!   with its checkpoint epoch — the base of a chain;
//! * a **delta frame** encodes the byte difference between the previous
//!   checkpoint's snapshot and the current one as copy/literal ops
//!   (rsync-style content-defined matching, so inserted map entries shift
//!   the tail without invalidating it), stamped with both epochs and
//!   checksummed on both ends of the chain.
//!
//! Because snapshots are *canonical* (sorted maps, no transient state), the
//! byte diff is small exactly when the logical diff is small — the hot
//! shard stops re-shipping its full suffix table every interval, while the
//! reconstruction stays bit-exact. [`IncrementalCheckpointer`] decides
//! full-vs-delta per interval (first frame, oversized delta, or a capped
//! chain length force a rebase); [`CheckpointReplayer`] consumes a frame
//! sequence and maintains the current full snapshot bytes, from which any
//! [`Restore`](super::Restore) type recovers exactly as from a plain
//! snapshot.
//!
//! ## Frame layout (inside the standard sealed envelope, tag
//! [`tag::CHECKPOINT_FRAME`])
//!
//! ```text
//! tag        u16   CHECKPOINT_FRAME
//! kind       u8    0 = full, 1 = delta
//! epoch      u64   checkpoint epoch of this frame
//! -- full --
//! len + bytes      the embedded sealed component snapshot
//! -- delta --
//! base_epoch        u64   epoch of the frame this delta applies on top of
//! base_len          u64   length of that base's snapshot bytes
//! base_checksum     u64   FNV-1a over those bytes (stale-base detection)
//! target_len        u64   length of the reconstructed snapshot
//! target_checksum   u64   FNV-1a over the reconstruction (apply is verified)
//! op_count + ops          0x00 copy{base_off u64, len u64} | 0x01 literal{len, bytes}
//! ```
//!
//! Decoding follows the module-wide hardening contract: every length is
//! validated against the bytes actually present before any allocation,
//! copy ranges are bounds-checked against the base, application never
//! allocates more than the op stream can justify, and a frame applied to
//! the wrong base fails with the typed [`CodecError::StaleBase`] instead of
//! reconstructing garbage (the final checksum would catch even a collision
//! there).

use super::{checksum, seal, tag, CodecError, Snapshot, SnapshotReader, SnapshotWriter};
use crate::fasthash::FastHashMap;

/// Matching granularity of the delta encoder: the minimum run of identical
/// bytes worth a copy op (16 bytes of op header + 1 of kind). Two map
/// entries in most components.
const BLOCK: usize = 32;

/// How many base offsets one block hash keeps as match candidates; beyond
/// this, extra occurrences of a repeated block add nothing but scan cost.
const MAX_CANDIDATES: usize = 8;

/// Rabin–Karp rolling-hash multiplier (any odd constant works; this is the
/// FNV prime, already in the crate's vocabulary).
const ROLL: u64 = 0x0000_0100_0000_01B3;

/// Frame kinds on the wire.
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;

/// One decoded checkpoint frame header (the payload stays inside the frame
/// bytes; this is what callers branch on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A full snapshot frame: the chain (re)bases here.
    Full,
    /// A delta frame against the previous checkpoint in the chain.
    Delta {
        /// The epoch of the checkpoint this delta applies on top of.
        base_epoch: u64,
    },
}

/// Builds a sealed **full** checkpoint frame embedding `snapshot_bytes`
/// (a sealed component snapshot) at `epoch`.
pub fn encode_full_frame(epoch: u64, snapshot_bytes: &[u8]) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::CHECKPOINT_FRAME);
    w.put_u8(KIND_FULL);
    w.put_u64(epoch);
    w.put_len(snapshot_bytes.len());
    let mut payload = w.into_bytes();
    payload.extend_from_slice(snapshot_bytes);
    seal(tag::CHECKPOINT_FRAME, &payload)
}

/// Builds a sealed **delta** checkpoint frame carrying the byte difference
/// from `base` (the previous checkpoint's snapshot bytes, at `base_epoch`)
/// to `target` (the current snapshot bytes, at `epoch`).
pub fn encode_delta_frame(base_epoch: u64, base: &[u8], epoch: u64, target: &[u8]) -> Vec<u8> {
    let ops = diff_ops(base, target);
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::CHECKPOINT_FRAME);
    w.put_u8(KIND_DELTA);
    w.put_u64(epoch);
    w.put_u64(base_epoch);
    w.put_len(base.len());
    w.put_u64(checksum(base));
    w.put_len(target.len());
    w.put_u64(checksum(target));
    w.put_len(ops.len());
    let mut payload = w.into_bytes();
    for op in &ops {
        match op {
            DiffOp::Copy { base_off, len } => {
                payload.push(0);
                payload.extend_from_slice(&(*base_off as u64).to_le_bytes());
                payload.extend_from_slice(&(*len as u64).to_le_bytes());
            }
            DiffOp::Literal { start, len } => {
                payload.push(1);
                payload.extend_from_slice(&(*len as u64).to_le_bytes());
                payload.extend_from_slice(&target[*start..*start + *len]);
            }
        }
    }
    seal(tag::CHECKPOINT_FRAME, &payload)
}

/// Reads a frame's kind and epoch without applying it.
pub fn peek_frame(frame: &[u8]) -> Result<(FrameKind, u64), CodecError> {
    let payload = super::unseal(tag::CHECKPOINT_FRAME, frame)?;
    let mut r = SnapshotReader::new(payload);
    r.expect_tag(tag::CHECKPOINT_FRAME)?;
    let kind = r.get_u8()?;
    let epoch = r.get_u64()?;
    match kind {
        KIND_FULL => Ok((FrameKind::Full, epoch)),
        KIND_DELTA => {
            let base_epoch = r.get_u64()?;
            Ok((FrameKind::Delta { base_epoch }, epoch))
        }
        _ => Err(CodecError::InvalidValue {
            what: "checkpoint frame kind must be 0 (full) or 1 (delta)",
        }),
    }
}

/// A copy/literal instruction of the delta encoder. Offsets index the
/// encoder's inputs; the wire encoding is written by
/// [`encode_delta_frame`].
enum DiffOp {
    Copy { base_off: usize, len: usize },
    Literal { start: usize, len: usize },
}

/// Greedy content-defined matching from `target` back into `base`:
/// indexes `base` in [`BLOCK`]-sized steps under a rolling hash, then
/// scans `target` once, emitting maximal verified copies and literal runs
/// for everything else. `O(|base| + |target|)` expected.
fn diff_ops(base: &[u8], target: &[u8]) -> Vec<DiffOp> {
    let mut ops = Vec::new();
    if target.is_empty() {
        return ops;
    }
    if base.len() < BLOCK || target.len() < BLOCK {
        ops.push(DiffOp::Literal {
            start: 0,
            len: target.len(),
        });
        return ops;
    }
    // `ROLL^(BLOCK-1)` for removing the outgoing byte from the rolling hash.
    let mut top = 1u64;
    for _ in 0..BLOCK - 1 {
        top = top.wrapping_mul(ROLL);
    }
    let hash_block = |block: &[u8]| -> u64 {
        block
            .iter()
            .fold(0u64, |h, &b| h.wrapping_mul(ROLL).wrapping_add(b as u64))
    };
    // Index the base at block-aligned offsets (non-overlapping: enough for
    // long stable runs, and |base|/BLOCK entries instead of |base|).
    let mut index: FastHashMap<u64, Vec<usize>> = FastHashMap::default();
    let mut off = 0;
    while off + BLOCK <= base.len() {
        let candidates = index
            .entry(hash_block(&base[off..off + BLOCK]))
            .or_default();
        if candidates.len() < MAX_CANDIDATES {
            candidates.push(off);
        }
        off += BLOCK;
    }

    let mut literal_start = 0usize;
    let mut pos = 0usize;
    let mut rolling = hash_block(&target[0..BLOCK]);
    while pos + BLOCK <= target.len() {
        let mut matched = None;
        if let Some(candidates) = index.get(&rolling) {
            for &base_off in candidates {
                if base[base_off..base_off + BLOCK] == target[pos..pos + BLOCK] {
                    // Extend the verified match forward as far as it goes.
                    let mut len = BLOCK;
                    while base_off + len < base.len()
                        && pos + len < target.len()
                        && base[base_off + len] == target[pos + len]
                    {
                        len += 1;
                    }
                    match matched {
                        Some((_, best)) if best >= len => {}
                        _ => matched = Some((base_off, len)),
                    }
                }
            }
        }
        if let Some((base_off, len)) = matched {
            if literal_start < pos {
                ops.push(DiffOp::Literal {
                    start: literal_start,
                    len: pos - literal_start,
                });
            }
            ops.push(DiffOp::Copy { base_off, len });
            pos += len;
            literal_start = pos;
            if pos + BLOCK <= target.len() {
                rolling = hash_block(&target[pos..pos + BLOCK]);
            }
        } else {
            // Roll one byte forward (skipped at the very tail, where the
            // window can no longer shift and the loop is about to exit).
            pos += 1;
            if pos + BLOCK <= target.len() {
                rolling = rolling
                    .wrapping_sub((target[pos - 1] as u64).wrapping_mul(top))
                    .wrapping_mul(ROLL)
                    .wrapping_add(target[pos + BLOCK - 1] as u64);
            }
        }
    }
    if literal_start < target.len() {
        ops.push(DiffOp::Literal {
            start: literal_start,
            len: target.len() - literal_start,
        });
    }
    ops
}

/// Applies a sealed **delta** frame to `base` (the previous checkpoint's
/// snapshot bytes at `base_epoch`), returning the reconstructed snapshot
/// bytes and the frame's epoch.
///
/// Fails with [`CodecError::StaleBase`] when the frame was encoded against
/// a different base (epoch, length or checksum disagree), and with the
/// usual typed errors on any structural corruption. Never allocates more
/// than the op stream justifies: output grows op by op, each op's length
/// validated against the base or the remaining frame bytes first.
pub fn apply_delta_frame(
    base: &[u8],
    base_epoch: u64,
    frame: &[u8],
) -> Result<(Vec<u8>, u64), CodecError> {
    let payload = super::unseal(tag::CHECKPOINT_FRAME, frame)?;
    let mut r = SnapshotReader::new(payload);
    r.expect_tag(tag::CHECKPOINT_FRAME)?;
    if r.get_u8()? != KIND_DELTA {
        return Err(CodecError::InvalidValue {
            what: "expected a delta checkpoint frame, found a full one",
        });
    }
    let epoch = r.get_u64()?;
    let frame_base_epoch = r.get_u64()?;
    if frame_base_epoch != base_epoch {
        return Err(CodecError::StaleBase {
            base_epoch: frame_base_epoch,
            found_epoch: base_epoch,
        });
    }
    let base_len = r.get_u64()?;
    let base_digest = r.get_u64()?;
    if base_len != base.len() as u64 || base_digest != checksum(base) {
        return Err(CodecError::StaleBase {
            base_epoch: frame_base_epoch,
            found_epoch: base_epoch,
        });
    }
    let target_len = r.get_u64()?;
    let target_digest = r.get_u64()?;
    let op_count = r.get_len(1)?;
    let mut out: Vec<u8> = Vec::new();
    for _ in 0..op_count {
        match r.get_u8()? {
            0 => {
                let base_off = r.get_usize()?;
                let len = r.get_usize()?;
                let end = base_off.checked_add(len).ok_or(CodecError::InvalidValue {
                    what: "copy op range overflows",
                })?;
                if end > base.len() {
                    return Err(CodecError::InvalidValue {
                        what: "copy op reaches outside the base snapshot",
                    });
                }
                out.extend_from_slice(&base[base_off..end]);
            }
            1 => {
                let len = r.get_len(1)?;
                let mut chunk = r.get_bytes(len)?;
                out.append(&mut chunk);
            }
            _ => {
                return Err(CodecError::InvalidValue {
                    what: "delta op kind must be 0 (copy) or 1 (literal)",
                })
            }
        }
        if out.len() as u64 > target_len {
            return Err(CodecError::InvalidValue {
                what: "delta ops produce more bytes than the declared target length",
            });
        }
    }
    r.finish()?;
    if out.len() as u64 != target_len {
        return Err(CodecError::InvalidValue {
            what: "delta ops produce fewer bytes than the declared target length",
        });
    }
    let computed = checksum(&out);
    if computed != target_digest {
        return Err(CodecError::ChecksumMismatch {
            stored: target_digest,
            computed,
        });
    }
    Ok((out, epoch))
}

/// Extracts the embedded snapshot bytes and epoch from a sealed **full**
/// checkpoint frame.
pub fn unwrap_full_frame(frame: &[u8]) -> Result<(Vec<u8>, u64), CodecError> {
    let payload = super::unseal(tag::CHECKPOINT_FRAME, frame)?;
    let mut r = SnapshotReader::new(payload);
    r.expect_tag(tag::CHECKPOINT_FRAME)?;
    if r.get_u8()? != KIND_FULL {
        return Err(CodecError::InvalidValue {
            what: "expected a full checkpoint frame, found a delta",
        });
    }
    let epoch = r.get_u64()?;
    let len = r.get_len(1)?;
    let bytes = r.get_bytes(len)?;
    r.finish()?;
    Ok((bytes, epoch))
}

/// Why the checkpointer emitted a full frame instead of a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebaseReason {
    /// First checkpoint of the chain.
    FirstFrame,
    /// The delta grew past the configured fraction of the full snapshot
    /// (the state churned too much for a delta to pay off).
    DeltaTooLarge,
    /// The chain hit its maximum length (bounding worst-case replay).
    ChainCap,
}

/// One emitted checkpoint: the sealed frame bytes plus what kind it is.
#[derive(Debug, Clone)]
pub enum CheckpointFrame {
    /// A full (rebase) frame.
    Full {
        /// The sealed frame bytes.
        bytes: Vec<u8>,
        /// Why the chain rebased here.
        reason: RebaseReason,
    },
    /// A delta frame against the previous checkpoint.
    Delta {
        /// The sealed frame bytes.
        bytes: Vec<u8>,
    },
}

impl CheckpointFrame {
    /// The sealed frame bytes, whichever kind this is.
    pub fn bytes(&self) -> &[u8] {
        match self {
            CheckpointFrame::Full { bytes, .. } | CheckpointFrame::Delta { bytes } => bytes,
        }
    }

    /// Whether this is a delta frame.
    pub fn is_delta(&self) -> bool {
        matches!(self, CheckpointFrame::Delta { .. })
    }
}

/// The incremental checkpoint writer: tracks the previous checkpoint's
/// snapshot bytes and emits a delta frame per interval, rebasing with a
/// full frame when the chain would get too long or the delta too large.
#[derive(Debug)]
pub struct IncrementalCheckpointer {
    /// Epoch and snapshot bytes of the previous checkpoint (the delta base).
    base: Option<(u64, Vec<u8>)>,
    deltas_since_base: u32,
    max_chain: u32,
    /// Rebase when `delta_bytes * rebase_denominator > full_bytes` — i.e.
    /// a delta must be at least `denominator×` smaller than the full
    /// snapshot to be worth chaining.
    rebase_denominator: usize,
}

impl Default for IncrementalCheckpointer {
    fn default() -> Self {
        Self::new()
    }
}

/// Default chain cap of [`IncrementalCheckpointer::new`].
const DEFAULT_MAX_CHAIN: u32 = 64;

/// Default rebase denominator of [`IncrementalCheckpointer::new`].
const DEFAULT_REBASE_DENOMINATOR: usize = 2;

impl IncrementalCheckpointer {
    /// A checkpointer with the default policy: rebase after 64 deltas or
    /// whenever a delta exceeds half the full snapshot.
    pub fn new() -> Self {
        Self::with_policy(DEFAULT_MAX_CHAIN, DEFAULT_REBASE_DENOMINATOR)
    }

    /// A checkpointer rebasing after `max_chain` consecutive deltas, or
    /// whenever `delta_bytes * rebase_denominator > full_bytes`
    /// (`rebase_denominator >= 1`; higher values demand smaller deltas).
    pub fn with_policy(max_chain: u32, rebase_denominator: usize) -> Self {
        assert!(max_chain > 0, "chain cap must admit at least one delta");
        assert!(
            rebase_denominator > 0,
            "rebase denominator must be positive"
        );
        Self {
            base: None,
            deltas_since_base: 0,
            max_chain,
            rebase_denominator,
        }
    }

    /// Epoch of the checkpoint the next delta would be encoded against.
    pub fn base_epoch(&self) -> Option<u64> {
        self.base.as_ref().map(|&(epoch, _)| epoch)
    }

    /// A checkpointer (default policy) resuming an existing chain: the next
    /// frame is encoded as a delta against `base_bytes`, the reconstruction
    /// a [`CheckpointReplayer`] produced for `base_epoch`. This is the
    /// restart path of the ingest service — a recovered worker keeps
    /// extending its on-disk chain instead of rebasing with a full frame.
    ///
    /// `deltas_since_base` is how many delta frames the recovered chain
    /// already holds since its last full frame
    /// ([`CheckpointReplayer::deltas_since_base`] after replay) — it seeds
    /// the chain cap, so a worker that restarts more often than every
    /// `max_chain` checkpoints still rebases on schedule instead of
    /// growing its chain (and worst-case replay) without bound.
    pub fn resume(base_epoch: u64, base_bytes: Vec<u8>, deltas_since_base: u32) -> Self {
        Self::resume_with_policy(
            DEFAULT_MAX_CHAIN,
            DEFAULT_REBASE_DENOMINATOR,
            base_epoch,
            base_bytes,
            deltas_since_base,
        )
    }

    /// [`Self::resume`] with an explicit rebase policy (the parameters of
    /// [`Self::with_policy`]), for callers that configured the original
    /// writer away from the defaults — resuming must not silently reset
    /// the policy along with the chain position.
    pub fn resume_with_policy(
        max_chain: u32,
        rebase_denominator: usize,
        base_epoch: u64,
        base_bytes: Vec<u8>,
        deltas_since_base: u32,
    ) -> Self {
        let mut writer = Self::with_policy(max_chain, rebase_denominator);
        writer.base = Some((base_epoch, base_bytes));
        writer.deltas_since_base = deltas_since_base;
        writer
    }

    /// Emits the checkpoint frame for `component`'s current state at
    /// `epoch` (epochs must be strictly increasing across calls).
    pub fn checkpoint<T: Snapshot>(&mut self, component: &T, epoch: u64) -> CheckpointFrame {
        let full = component.snapshot();
        self.checkpoint_bytes(full, epoch)
    }

    /// [`Self::checkpoint`] over already-encoded snapshot bytes (for
    /// callers that need the snapshot for something else too).
    pub fn checkpoint_bytes(&mut self, full: Vec<u8>, epoch: u64) -> CheckpointFrame {
        if let Some((base_epoch, base)) = &self.base {
            assert!(
                epoch > *base_epoch,
                "checkpoint epochs must be strictly increasing"
            );
            if self.deltas_since_base < self.max_chain {
                let delta = encode_delta_frame(*base_epoch, base, epoch, &full);
                if delta.len().saturating_mul(self.rebase_denominator) <= full.len() {
                    self.base = Some((epoch, full));
                    self.deltas_since_base += 1;
                    return CheckpointFrame::Delta { bytes: delta };
                }
                let frame = encode_full_frame(epoch, &full);
                self.base = Some((epoch, full));
                self.deltas_since_base = 0;
                return CheckpointFrame::Full {
                    bytes: frame,
                    reason: RebaseReason::DeltaTooLarge,
                };
            }
            let frame = encode_full_frame(epoch, &full);
            self.base = Some((epoch, full));
            self.deltas_since_base = 0;
            return CheckpointFrame::Full {
                bytes: frame,
                reason: RebaseReason::ChainCap,
            };
        }
        let frame = encode_full_frame(epoch, &full);
        self.base = Some((epoch, full));
        self.deltas_since_base = 0;
        CheckpointFrame::Full {
            bytes: frame,
            reason: RebaseReason::FirstFrame,
        }
    }
}

/// The checkpoint reader: applies a frame sequence (one full frame, then
/// deltas, with rebases allowed anywhere) and holds the current
/// reconstructed snapshot bytes.
#[derive(Debug, Default)]
pub struct CheckpointReplayer {
    current: Option<(u64, Vec<u8>)>,
    deltas_since_base: u32,
}

impl CheckpointReplayer {
    /// An empty replayer (no frame applied yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the next frame in the chain. Full frames (re)base the
    /// chain; delta frames require the previous frame's reconstruction and
    /// fail with [`CodecError::StaleBase`] on a gap.
    pub fn apply(&mut self, frame: &[u8]) -> Result<(), CodecError> {
        match peek_frame(frame)? {
            (FrameKind::Full, _) => {
                let (bytes, epoch) = unwrap_full_frame(frame)?;
                self.current = Some((epoch, bytes));
                self.deltas_since_base = 0;
                Ok(())
            }
            (FrameKind::Delta { .. }, _) => {
                let (held_epoch, base) = self.current.as_ref().ok_or(CodecError::InvalidValue {
                    what: "delta frame before any full frame in the chain",
                })?;
                let (bytes, epoch) = apply_delta_frame(base, *held_epoch, frame)?;
                self.current = Some((epoch, bytes));
                self.deltas_since_base = self.deltas_since_base.saturating_add(1);
                Ok(())
            }
        }
    }

    /// How many delta frames have been applied since the chain's last
    /// full frame — what [`IncrementalCheckpointer::resume`] needs to
    /// seed its chain cap when a writer picks the chain back up.
    pub fn deltas_since_base(&self) -> u32 {
        self.deltas_since_base
    }

    /// The reconstructed snapshot bytes and their epoch, if any frame has
    /// been applied.
    pub fn current(&self) -> Option<(u64, &[u8])> {
        self.current
            .as_ref()
            .map(|(epoch, bytes)| (*epoch, bytes.as_slice()))
    }

    /// Consumes the replayer, returning the reconstructed snapshot bytes
    /// and their epoch.
    pub fn into_current(self) -> Option<(u64, Vec<u8>)> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Restore;
    use tps_random::{StreamRng, Xoshiro256};

    fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
    }

    #[test]
    fn delta_round_trips_small_edits_compactly() {
        let base = pseudo_bytes(100_000, 1);
        let mut target = base.clone();
        // A few scattered point edits plus one insertion.
        for &pos in &[40usize, 9_000, 42_000, 77_777] {
            target[pos] ^= 0xA5;
        }
        target.splice(55_000..55_000, [1, 2, 3, 4, 5]);
        let frame = encode_delta_frame(7, &base, 8, &target);
        assert!(
            frame.len() < base.len() / 20,
            "delta for 9 changed bytes should be tiny, got {} of {}",
            frame.len(),
            base.len()
        );
        let (rebuilt, epoch) = apply_delta_frame(&base, 7, &frame).unwrap();
        assert_eq!(epoch, 8);
        assert_eq!(rebuilt, target);
    }

    #[test]
    fn delta_handles_unrelated_inputs() {
        let base = pseudo_bytes(1_000, 2);
        let target = pseudo_bytes(1_500, 3);
        let frame = encode_delta_frame(1, &base, 2, &target);
        let (rebuilt, _) = apply_delta_frame(&base, 1, &frame).unwrap();
        assert_eq!(rebuilt, target);
        // Degenerate sizes.
        for (b, t) in [(0usize, 0usize), (0, 10), (10, 0), (5, 5)] {
            let base = pseudo_bytes(b, 4);
            let target = pseudo_bytes(t, 5);
            let frame = encode_delta_frame(1, &base, 2, &target);
            let (rebuilt, _) = apply_delta_frame(&base, 1, &frame).unwrap();
            assert_eq!(rebuilt, target);
        }
    }

    #[test]
    fn stale_base_is_a_typed_error() {
        let base = pseudo_bytes(4_096, 6);
        let target = pseudo_bytes(4_096, 7);
        let frame = encode_delta_frame(3, &base, 4, &target);
        // Wrong epoch.
        assert!(matches!(
            apply_delta_frame(&base, 2, &frame),
            Err(CodecError::StaleBase {
                base_epoch: 3,
                found_epoch: 2
            })
        ));
        // Right epoch, wrong bytes.
        let mut other = base.clone();
        other[100] ^= 1;
        assert!(matches!(
            apply_delta_frame(&other, 3, &frame),
            Err(CodecError::StaleBase { .. })
        ));
    }

    #[test]
    fn checkpointer_chain_replays_to_the_live_snapshot() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut writer = IncrementalCheckpointer::with_policy(8, 1);
        let mut replayer = CheckpointReplayer::new();
        let mut full_frames = 0;
        for epoch in 1..=20u64 {
            for _ in 0..100 {
                rng.next_u64();
            }
            let frame = writer.checkpoint(&rng, epoch);
            if !frame.is_delta() {
                full_frames += 1;
            }
            replayer.apply(frame.bytes()).unwrap();
            let (held_epoch, bytes) = replayer.current().unwrap();
            assert_eq!(held_epoch, epoch);
            assert_eq!(bytes, rng.snapshot(), "chain drifted at epoch {epoch}");
            let mut restored = Xoshiro256::restore(bytes).unwrap();
            assert_eq!(restored.next_u64(), rng.clone().next_u64());
        }
        // Chain cap 8 over 20 epochs forces at least one mid-chain rebase.
        assert!(full_frames >= 2, "chain cap never rebased");
    }

    #[test]
    fn resumed_chain_keeps_the_cap_and_policy() {
        // Large, slowly-mutating state so deltas always beat the rebase
        // denominator and only the chain cap can force a full frame.
        let mut state = vec![0x3Cu8; 4096];
        let mut writer = IncrementalCheckpointer::with_policy(3, 1);
        let mut replayer = CheckpointReplayer::new();
        for epoch in 1..=3u64 {
            state[epoch as usize * 13] = epoch as u8;
            replayer
                .apply(writer.checkpoint_bytes(state.clone(), epoch).bytes())
                .unwrap();
        }
        // Full at epoch 1, deltas at 2 and 3: the replayer counted them.
        assert_eq!(replayer.deltas_since_base(), 2);
        let seeded = replayer.deltas_since_base();
        let (epoch, bytes) = replayer.into_current().unwrap();
        let mut resumed = IncrementalCheckpointer::resume_with_policy(3, 1, epoch, bytes, seeded);
        // One more delta fits under the cap of 3...
        state[100] ^= 0xFF;
        assert!(resumed.checkpoint_bytes(state.clone(), 4).is_delta());
        // ...then the cap forces a rebase, exactly as an uninterrupted
        // writer would have.
        state[200] ^= 0xFF;
        match resumed.checkpoint_bytes(state.clone(), 5) {
            CheckpointFrame::Full { reason, .. } => {
                assert_eq!(reason, RebaseReason::ChainCap)
            }
            CheckpointFrame::Delta { .. } => {
                panic!("resumed chain ignored its cap")
            }
        }
    }

    #[test]
    fn skipping_a_frame_fails_as_stale() {
        // Large, slowly-mutating state so every non-first frame really is
        // a delta (a tiny state would rebase to full frames and dodge the
        // staleness checks this test is about).
        let mut state = vec![0xA5u8; 4096];
        let mut writer = IncrementalCheckpointer::with_policy(64, 2);
        let mut frames = Vec::new();
        for epoch in 1..=4u64 {
            state[epoch as usize * 7] = epoch as u8;
            frames.push(writer.checkpoint_bytes(state.clone(), epoch));
        }
        assert!(frames[1..].iter().all(CheckpointFrame::is_delta));
        let mut replayer = CheckpointReplayer::new();
        replayer.apply(frames[0].bytes()).unwrap();
        replayer.apply(frames[1].bytes()).unwrap();
        // Skip epoch 3, apply epoch 4: typed stale-base error.
        assert!(matches!(
            replayer.apply(frames[3].bytes()),
            Err(CodecError::StaleBase { .. })
        ));
        // A delta with no base at all is also typed.
        let mut empty = CheckpointReplayer::new();
        assert!(matches!(
            empty.apply(frames[1].bytes()),
            Err(CodecError::InvalidValue { .. })
        ));
    }
}
