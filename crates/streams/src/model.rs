//! Stream-model traits and sampler outcomes.
//!
//! Definition 1.1 of the paper allows a `G`-sampler three behaviours:
//! return an index `i ∈ [n]`, return the special symbol `⊥` (only meaningful
//! when `f = 0`), or declare `FAIL` (with probability at most `δ`), in which
//! case it returns nothing and the distributional guarantee is conditioned on
//! not failing. [`SampleOutcome`] encodes exactly these three cases.

use crate::update::{Item, MatrixUpdate, SignedUpdate};

/// The result of querying a `G`-sampler (Definition 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleOutcome {
    /// The sampler produced a coordinate index.
    Index(Item),
    /// The sampler reports that the frequency vector is identically zero
    /// (the paper's `⊥` symbol).
    Empty,
    /// The sampler failed (allowed with probability at most `δ`); it returns
    /// nothing and the caller may retry with an independent instance.
    Fail,
}

impl SampleOutcome {
    /// Returns the sampled index, if any.
    pub fn index(&self) -> Option<Item> {
        match self {
            SampleOutcome::Index(i) => Some(*i),
            _ => None,
        }
    }

    /// Whether the sampler produced an index.
    pub fn is_index(&self) -> bool {
        matches!(self, SampleOutcome::Index(_))
    }

    /// Whether the sampler failed.
    pub fn is_fail(&self) -> bool {
        matches!(self, SampleOutcome::Fail)
    }
}

/// A one-pass sampler over an insertion-only stream.
///
/// The stream is fed one unit update at a time through
/// [`StreamSampler::update`]; at any point [`StreamSampler::sample`] may be
/// called to draw an outcome for the stream seen so far. Samplers are allowed
/// to be stateful across `sample` calls only in ways that do not violate
/// their distributional guarantee for a single call; the experiment harness
/// always uses fresh instances when it needs independent samples.
pub trait StreamSampler {
    /// Processes one unit insertion to coordinate `item`.
    fn update(&mut self, item: Item);

    /// Draws an outcome for the stream processed so far.
    fn sample(&mut self) -> SampleOutcome;

    /// Processes a contiguous batch of unit insertions.
    ///
    /// The default implementation is the per-item loop. Implementations may
    /// override it with an amortised fast path, but the override **must be
    /// observationally identical** to the loop: after feeding the same
    /// updates through `update_batch` or through repeated [`update`] calls
    /// with the same seed, the sampler must hold the same logical state —
    /// including its RNG position — so every subsequent [`sample`] draw
    /// agrees. (`tests/properties.rs` enforces this batch ≡ loop law for
    /// every sampler in the workspace.)
    ///
    /// [`update`]: StreamSampler::update
    /// [`sample`]: StreamSampler::sample
    fn update_batch(&mut self, items: &[Item]) {
        for &item in items {
            self.update(item);
        }
    }

    /// Convenience: processes an entire slice of updates.
    ///
    /// Routes through [`StreamSampler::update_batch`], so it benefits from
    /// batched fast paths automatically.
    fn update_all(&mut self, items: &[Item]) {
        self.update_batch(items);
    }
}

/// A one-pass sampler over a sliding window of an insertion-only stream.
///
/// Identical to [`StreamSampler`], except the distributional guarantee of
/// [`SlidingWindowSampler::sample`] refers only to the `W` most recent
/// updates (the active window).
pub trait SlidingWindowSampler {
    /// Processes one unit insertion to coordinate `item`.
    fn update(&mut self, item: Item);

    /// Draws an outcome for the currently active window.
    fn sample(&mut self) -> SampleOutcome;

    /// Window width `W`.
    fn window(&self) -> u64;

    /// Processes a contiguous batch of unit insertions.
    ///
    /// Subject to the same batch ≡ loop law as
    /// [`StreamSampler::update_batch`].
    fn update_batch(&mut self, items: &[Item]) {
        for &item in items {
            self.update(item);
        }
    }
}

/// A sampler over a turnstile stream (signed updates).
pub trait TurnstileSampler {
    /// Processes one signed update `(i, Δ)`.
    fn update(&mut self, update: SignedUpdate);

    /// Draws an outcome for the stream processed so far.
    fn sample(&mut self) -> SampleOutcome;

    /// Processes a contiguous batch of signed updates.
    ///
    /// Subject to the same batch ≡ loop law as
    /// [`StreamSampler::update_batch`].
    fn update_batch(&mut self, updates: &[SignedUpdate]) {
        for &u in updates {
            self.update(u);
        }
    }
}

/// The kind-generic ingest capability the sampler-family layer routes
/// through: "a sampler that consumes updates of type `U`".
///
/// [`StreamSampler`] and [`TurnstileSampler`] fix their update types
/// (unit insertions vs. signed updates) and that is the right surface for
/// algorithm code. The *plumbing* above them — shard scatter, staged
/// runtime ingest, the cross-process worker loop — is identical for both
/// models, so it is written once against this trait and instantiated per
/// update type. The two blanket impls below connect the worlds: every
/// insertion-only sampler ingests [`Item`]s, every turnstile sampler
/// ingests [`SignedUpdate`]s, with no per-type glue.
///
/// The batch ≡ loop law is inherited verbatim: `ingest_batch` must leave
/// the sampler in the state the per-update loop would (RNG position
/// included).
pub trait UpdateSampler<U: crate::update::StreamUpdate> {
    /// Processes one update.
    fn ingest(&mut self, update: U);

    /// Processes a contiguous batch of updates (amortised fast path where
    /// the underlying sampler has one).
    fn ingest_batch(&mut self, updates: &[U]);

    /// Draws an outcome for the stream processed so far.
    fn draw(&mut self) -> SampleOutcome;
}

impl<S: StreamSampler> UpdateSampler<Item> for S {
    fn ingest(&mut self, update: Item) {
        self.update(update);
    }

    fn ingest_batch(&mut self, updates: &[Item]) {
        self.update_batch(updates);
    }

    fn draw(&mut self) -> SampleOutcome {
        self.sample()
    }
}

impl<S: TurnstileSampler> UpdateSampler<SignedUpdate> for S {
    fn ingest(&mut self, update: SignedUpdate) {
        self.update(update);
    }

    fn ingest_batch(&mut self, updates: &[SignedUpdate]) {
        self.update_batch(updates);
    }

    fn draw(&mut self) -> SampleOutcome {
        self.sample()
    }
}

/// A row sampler over an insertion-only stream of matrix updates
/// (Section 3.2.3).
pub trait MatrixSampler {
    /// Processes one unit update to matrix entry `(row, col)`.
    fn update(&mut self, update: MatrixUpdate);

    /// Draws a row-index outcome for the matrix seen so far.
    fn sample(&mut self) -> SampleOutcome;
}

/// A streaming estimator of a scalar statistic of the frequency vector
/// (e.g. `F_p`, `‖f‖_∞`, `F_0`).
pub trait Estimator {
    /// Processes one unit insertion to coordinate `item`.
    fn update(&mut self, item: Item);

    /// Returns the current estimate.
    fn estimate(&self) -> f64;

    /// Processes a contiguous batch of unit insertions (default: per-item
    /// loop; overrides must be observationally identical to the loop).
    fn update_batch(&mut self, items: &[Item]) {
        for &item in items {
            self.update(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert_eq!(SampleOutcome::Index(7).index(), Some(7));
        assert_eq!(SampleOutcome::Fail.index(), None);
        assert!(SampleOutcome::Index(0).is_index());
        assert!(SampleOutcome::Fail.is_fail());
        assert!(!SampleOutcome::Empty.is_fail());
    }

    struct CountingSampler {
        count: u64,
    }

    impl StreamSampler for CountingSampler {
        fn update(&mut self, _item: Item) {
            self.count += 1;
        }
        fn sample(&mut self) -> SampleOutcome {
            if self.count == 0 {
                SampleOutcome::Empty
            } else {
                SampleOutcome::Index(self.count)
            }
        }
    }

    #[test]
    fn update_all_feeds_every_item() {
        let mut s = CountingSampler { count: 0 };
        s.update_all(&[1, 2, 3, 4]);
        assert_eq!(s.sample(), SampleOutcome::Index(4));
    }
}
