//! # tps-streams
//!
//! The data-stream model underlying the `truly-perfect-samplers` workspace.
//!
//! This crate contains everything the samplers of Jayaram, Woodruff and Zhou
//! (PODS 2022) assume about their input but do not themselves implement:
//!
//! * the update types and stream-model traits ([`update`], [`model`]),
//! * the mergeability contracts behind the sharded scatter-gather
//!   front-end ([`merge`]),
//! * exact frequency vectors and the *target* sampling distributions that a
//!   truly perfect sampler must hit exactly ([`frequency`]),
//! * the measure functions `G` (Lp moments, M-estimators, concave functions)
//!   with the per-increment bounds `ζ` that drive the framework's rejection
//!   step ([`measure`]),
//! * synthetic workload generators standing in for the network / database /
//!   IoT streams that motivate the paper ([`generators`]),
//! * statistical utilities for comparing empirical sample distributions
//!   against the exact target (total-variation distance, χ² statistics,
//!   composition-bias measurements) ([`stats`]),
//! * a bounded SPSC ring and the backpressure policy type behind the
//!   persistent sharded runtime in `tps-core` ([`spsc`]),
//! * the framed coordinator↔worker control protocol of the cross-process
//!   ingest service ([`wire`]),
//! * the typed query surface — consistency levels, options, reply
//!   envelope — shared by every query front door ([`query`]), and
//! * a tiny space-accounting trait so every data structure in the workspace
//!   can report measured memory to the benchmark harness ([`space`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod codec;
pub mod fasthash;
pub mod frequency;
pub mod generators;
pub mod measure;
pub mod merge;
pub mod model;
pub mod query;
pub mod space;
pub mod spsc;
pub mod stats;
pub mod update;
pub mod wire;

pub use batch::{aggregate_in_order, count_multiplicities, for_each_run};
pub use codec::{CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
pub use fasthash::{FastHashMap, FastHashSet};
pub use frequency::FrequencyVector;
pub use measure::{CappedCount, ConcaveLog, Fair, Huber, Lp, MeasureFn, Tukey, L1L2};
pub use merge::{MergeableSampler, MergeableSummary};
pub use model::{
    Estimator, MatrixSampler, SampleOutcome, SlidingWindowSampler, StreamSampler, TurnstileSampler,
    UpdateSampler,
};
pub use query::{QueryConsistency, QueryOptions, QuerySnapshot};
pub use space::SpaceUsage;
pub use spsc::Backpressure;
pub use update::{Item, MatrixUpdate, SignedUpdate, StreamUpdate, Timestamp, WindowSpec};
